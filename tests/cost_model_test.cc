// Tests for src/cost: size accounting, clustered-prefix access-path analysis
// (§4.2), the correlation-aware cost model (A-2.2), and the
// correlation-oblivious proxy of Figure 10.
#include <gtest/gtest.h>

#include "cost/correlation_cost_model.h"
#include "cost/oblivious_cost_model.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

// Shared tiny-SSB fixture.
class CostModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.02;  // 120k rows
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    // Small pages keep paper-like page-count geometry at test scale, and
    // the seek cost is scaled with the page size to preserve the paper's
    // seek : page-transfer ratio.
    sopt.disk.page_size_bytes = 1024;
    sopt.disk.seek_seconds = 0.0055 / 8.0;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    workload_ = new Workload(ssb::MakeWorkload());
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  /// An MV holding Q1.1's columns with the given clustered key.
  static MvSpec Q11Spec(std::vector<std::string> key) {
    MvSpec spec;
    spec.name = "test_mv";
    spec.fact_table = "lineorder";
    spec.columns = {"d_year",      "lo_discount",      "lo_quantity",
                    "lo_extendedprice", "d_yearmonthnum", "lo_orderdate"};
    spec.clustered_key = std::move(key);
    return spec;
  }

  static MvSpec BaseSpec() {
    MvSpec spec;
    spec.name = "base";
    spec.fact_table = "lineorder";
    for (size_t c = 0; c < universe_->fact_table().schema().NumColumns(); ++c) {
      spec.columns.push_back(universe_->fact_table().schema().Column(c).name);
    }
    spec.clustered_key = {"lo_orderkey", "lo_linenumber"};
    spec.is_fact_recluster = true;
    spec.is_base = true;
    return spec;
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static Workload* workload_;
};

Catalog* CostModelTest::catalog_ = nullptr;
Universe* CostModelTest::universe_ = nullptr;
UniverseStats* CostModelTest::stats_ = nullptr;
StatsRegistry* CostModelTest::registry_ = nullptr;
Workload* CostModelTest::workload_ = nullptr;

// ---------- MvSpec sizing ----------

TEST_F(CostModelTest, RowWidthSumsColumnWidths) {
  const MvSpec spec = Q11Spec({"d_year"});
  // d_year 4 + lo_discount 1 + lo_quantity 1 + lo_extendedprice 4 +
  // d_yearmonthnum 4 + lo_orderdate 4 = 18.
  EXPECT_EQ(MvRowWidthBytes(spec, *stats_), 18u);
}

TEST_F(CostModelTest, MoreColumnsMeansMorePages) {
  MvSpec narrow = Q11Spec({"d_year"});
  narrow.columns = {"d_year", "lo_discount"};
  const MvSpec wide = Q11Spec({"d_year"});
  EXPECT_LT(MvHeapPages(narrow, *stats_, stats_->options().disk),
            MvHeapPages(wide, *stats_, stats_->options().disk));
}

TEST_F(CostModelTest, SizeIncludesClusteredInternals) {
  const MvSpec spec = Q11Spec({"d_year"});
  const uint64_t heap_bytes =
      MvHeapPages(spec, *stats_, stats_->options().disk) *
      stats_->options().disk.page_size_bytes;
  EXPECT_GE(EstimateMvSizeBytes(spec, *stats_, stats_->options().disk),
            heap_bytes);
}

TEST_F(CostModelTest, BaseChargesNothing) {
  EXPECT_EQ(EstimateMvSizeBytes(BaseSpec(), *stats_, stats_->options().disk),
            0u);
}

TEST_F(CostModelTest, ReclusterChargesPkIndex) {
  MvSpec recluster = BaseSpec();
  recluster.is_base = false;
  recluster.clustered_key = {"lo_orderdate"};
  const uint64_t size =
      EstimateMvSizeBytes(recluster, *stats_, stats_->options().disk);
  EXPECT_GT(size, 0u);
  // A dense PK index is far smaller than the full fact heap.
  const uint64_t heap_bytes =
      MvHeapPages(recluster, *stats_, stats_->options().disk) * 8192;
  EXPECT_LT(size, heap_bytes);
}

// ---------- Feasibility ----------

TEST_F(CostModelTest, MvCanServeRequiresColumns) {
  const Query& q11 = workload_->queries[0];
  EXPECT_TRUE(MvCanServe(q11, Q11Spec({"d_year"})));
  MvSpec missing = Q11Spec({"d_year"});
  missing.columns = {"d_year", "lo_discount"};  // no quantity/price
  EXPECT_FALSE(MvCanServe(q11, missing));
  // Fact re-clusterings serve everything on their fact.
  EXPECT_TRUE(MvCanServe(q11, BaseSpec()));
  // Wrong fact table serves nothing.
  MvSpec other = Q11Spec({"d_year"});
  other.fact_table = "nope";
  EXPECT_FALSE(MvCanServe(q11, other));
}

TEST_F(CostModelTest, InfeasiblePairCostsInfinity) {
  CorrelationCostModel model(registry_);
  MvSpec missing = Q11Spec({"d_year"});
  missing.columns = {"d_year"};
  EXPECT_EQ(model.Seconds(workload_->queries[0], missing), kInfeasibleCost);
}

// ---------- Clustered prefix analysis ----------

TEST_F(CostModelTest, PrefixWalkConsumesEqThenRange) {
  const Query& q11 = workload_->queries[0];  // year EQ, discount+qty RANGE
  const auto plan = AnalyzeClusteredPrefix(
      q11, {"d_year", "lo_discount", "lo_quantity"}, *stats_);
  // EQ(year) consumed, RANGE(discount) consumed and stops the walk.
  EXPECT_EQ(plan.consumed_key_columns, 2);
  EXPECT_LT(plan.selectivity, 0.1);
  EXPECT_EQ(plan.num_ranges, 1.0);
}

TEST_F(CostModelTest, PrefixWalkStopsAtUnpredicatedColumn) {
  const Query& q11 = workload_->queries[0];
  const auto plan = AnalyzeClusteredPrefix(
      q11, {"lo_orderdate", "d_year"}, *stats_);
  EXPECT_FALSE(plan.usable());
}

TEST_F(CostModelTest, InMultipliesRanges) {
  Query q;
  q.id = "t_in";
  q.fact_table = "lineorder";
  q.predicates = {Predicate::In("d_year", {1993, 1995, 1997})};
  const auto plan = AnalyzeClusteredPrefix(q, {"d_year"}, *stats_);
  EXPECT_EQ(plan.num_ranges, 3.0);
}

// ---------- Correlation-aware model behaviour ----------

TEST_F(CostModelTest, DedicatedClusteringBeatsFullScan) {
  CorrelationCostModel model(registry_);
  const Query& q11 = workload_->queries[0];
  const MvSpec dedicated = Q11Spec({"d_year", "lo_discount", "lo_quantity"});
  const MvSpec unclustered = Q11Spec({"lo_extendedprice"});
  const CostBreakdown fast = model.Cost(q11, dedicated);
  const CostBreakdown slow = model.Cost(q11, unclustered);
  EXPECT_LT(fast.seconds, slow.seconds);
  // The winning plan on a dedicated clustering reads a small slice, never
  // the whole object (clustered scan and its CM equivalent both qualify).
  EXPECT_NE(fast.path, AccessPath::kFullScan);
  EXPECT_LT(fast.selectivity, 0.2);
}

TEST_F(CostModelTest, CorrelatedClusteringCheaperThanUncorrelated) {
  // Q1.2 predicates d_yearmonthnum; clustering on lo_orderdate is highly
  // correlated with it, clustering on lo_extendedprice is not. The
  // correlation-aware secondary path must price the former far cheaper.
  CorrelationCostModel model(registry_);
  const Query& q12 = workload_->queries[1];
  MvSpec correlated = Q11Spec({"lo_orderdate"});
  MvSpec uncorrelated = Q11Spec({"lo_extendedprice"});
  const CostBreakdown corr =
      model.SecondaryPathCost(q12, correlated, {"d_yearmonthnum"});
  const CostBreakdown uncorr =
      model.SecondaryPathCost(q12, uncorrelated, {"d_yearmonthnum"});
  ASSERT_TRUE(corr.feasible());
  ASSERT_TRUE(uncorr.feasible());
  EXPECT_LT(corr.seconds * 2, uncorr.seconds);
  // The correlated plan touches a fraction of the heap; the uncorrelated
  // one sweeps almost all of it.
  EXPECT_LT(corr.selectivity * 5, uncorr.selectivity);
}

TEST_F(CostModelTest, SecondaryNeverBeatsPhysicalLimits) {
  CorrelationCostModel model(registry_);
  const Query& q11 = workload_->queries[0];
  const MvSpec spec = Q11Spec({"lo_orderdate"});
  const CostBreakdown any = model.Cost(q11, spec);
  ASSERT_TRUE(any.feasible());
  EXPECT_GT(any.seconds, 0.0);
  const double fullscan =
      MvFullScanSeconds(spec, *stats_, stats_->options().disk) +
      stats_->options().disk.seek_seconds;
  EXPECT_LE(any.seconds, fullscan + 1e-9);
}

TEST_F(CostModelTest, CostIsDeterministicAndCached) {
  CorrelationCostModel model(registry_);
  const Query& q13 = workload_->queries[2];
  const MvSpec spec = Q11Spec({"d_year", "lo_discount"});
  const double a = model.Seconds(q13, spec);
  const double b = model.Seconds(q13, spec);
  EXPECT_EQ(a, b);
}

TEST_F(CostModelTest, BaseServesAllThirteenQueries) {
  CorrelationCostModel model(registry_);
  for (const auto& q : workload_->queries) {
    EXPECT_NE(model.Seconds(q, BaseSpec()), kInfeasibleCost) << q.id;
  }
}

// ---------- Oblivious model: the Fig 10 property ----------

TEST_F(CostModelTest, ObliviousModelIsFlatAcrossClusterings) {
  ObliviousCostModel model(registry_);
  const Query& q12 = workload_->queries[1];
  const CostBreakdown a =
      model.SecondaryCost(q12, Q11Spec({"lo_orderdate"}), {"d_yearmonthnum"});
  const CostBreakdown b = model.SecondaryCost(
      q12, Q11Spec({"lo_extendedprice"}), {"d_yearmonthnum"});
  ASSERT_TRUE(a.feasible());
  ASSERT_TRUE(b.feasible());
  EXPECT_NEAR(a.seconds, b.seconds, 1e-9);  // clustering-independent
}

TEST_F(CostModelTest, ObliviousUnderestimatesUncorrelatedDesigns) {
  CorrelationCostModel aware(registry_);
  ObliviousCostModel oblivious(registry_);
  const Query& q12 = workload_->queries[1];
  const MvSpec uncorrelated = Q11Spec({"lo_extendedprice"});
  const CostBreakdown real =
      aware.SecondaryPathCost(q12, uncorrelated, {"d_yearmonthnum"});
  const CostBreakdown rosy =
      oblivious.SecondaryCost(q12, uncorrelated, {"d_yearmonthnum"});
  ASSERT_TRUE(real.feasible());
  ASSERT_TRUE(rosy.feasible());
  EXPECT_LT(rosy.seconds * 3, real.seconds);
}

TEST_F(CostModelTest, ModelsAgreeOnFullScans) {
  CorrelationCostModel aware(registry_);
  ObliviousCostModel oblivious(registry_);
  Query no_pred;
  no_pred.id = "t_scan";
  no_pred.fact_table = "lineorder";
  no_pred.aggregates = {{"lo_extendedprice", ""}};
  const MvSpec spec = Q11Spec({"d_year"});
  EXPECT_NEAR(aware.Seconds(no_pred, spec), oblivious.Seconds(no_pred, spec),
              1e-9);
}

}  // namespace
}  // namespace coradd
