// Tests for src/catalog: schema/byte-width accounting, columnar tables with
// stable lexicographic sorts, star-schema catalog metadata, and the
// pre-joined universe relation.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/universe.h"

namespace coradd {
namespace {

ColumnDef Int(const std::string& name, uint32_t bytes = 4) {
  ColumnDef c;
  c.name = name;
  c.byte_size = bytes;
  return c;
}

// ---------- Schema ----------

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  s.AddColumn(Int("a"));
  s.AddColumn(Int("b", 8));
  EXPECT_EQ(s.NumColumns(), 2u);
  EXPECT_EQ(s.ColumnIndex("a"), 0);
  EXPECT_EQ(s.ColumnIndex("b"), 1);
  EXPECT_EQ(s.ColumnIndex("z"), -1);
  EXPECT_TRUE(s.HasColumn("b"));
  EXPECT_FALSE(s.HasColumn("z"));
}

TEST(SchemaTest, RowWidthSumsByteSizes) {
  Schema s({Int("a", 4), Int("b", 10), Int("c", 1)});
  EXPECT_EQ(s.RowWidthBytes(), 15u);
}

TEST(SchemaTest, ProjectPreservesOrderAndWidths) {
  Schema s({Int("a", 4), Int("b", 8), Int("c", 2)});
  Schema p = s.Project({2, 0});
  ASSERT_EQ(p.NumColumns(), 2u);
  EXPECT_EQ(p.Column(0).name, "c");
  EXPECT_EQ(p.Column(1).name, "a");
  EXPECT_EQ(p.RowWidthBytes(), 6u);
}

TEST(SchemaTest, RenderUsesDictionary) {
  ColumnDef c;
  c.name = "city";
  c.type = ValueType::kString;
  c.dictionary = {"BOSTON", "NYC"};
  EXPECT_EQ(c.Render(0), "BOSTON");
  EXPECT_EQ(c.Render(1), "NYC");
  ColumnDef i = Int("n");
  EXPECT_EQ(i.Render(12), "12");
}

// ---------- Table ----------

TEST(TableTest, AppendAndRead) {
  Table t(Schema({Int("a"), Int("b")}), "t");
  t.AppendRow({1, 10});
  t.AppendRow({2, 20});
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Value(0, 0), 1);
  EXPECT_EQ(t.Value(1, 1), 20);
}

TEST(TableTest, SortByColumnsLexicographic) {
  Table t(Schema({Int("a"), Int("b")}), "t");
  t.AppendRow({2, 1});
  t.AppendRow({1, 9});
  t.AppendRow({2, 0});
  t.AppendRow({1, 3});
  t.SortByColumns({0, 1});
  EXPECT_EQ(t.Value(0, 0), 1);
  EXPECT_EQ(t.Value(0, 1), 3);
  EXPECT_EQ(t.Value(1, 1), 9);
  EXPECT_EQ(t.Value(2, 1), 0);
  EXPECT_EQ(t.Value(3, 1), 1);
}

TEST(TableTest, SortReturnsPermutation) {
  Table t(Schema({Int("a")}), "t");
  t.AppendRow({3});
  t.AppendRow({1});
  t.AppendRow({2});
  const auto perm = t.SortByColumns({0});
  // perm[new_pos] = old_pos
  EXPECT_EQ(perm[0], 1u);
  EXPECT_EQ(perm[1], 2u);
  EXPECT_EQ(perm[2], 0u);
}

TEST(TableTest, SortIsStable) {
  Table t(Schema({Int("k"), Int("tag")}), "t");
  for (int i = 0; i < 10; ++i) t.AppendRow({i % 2, i});
  t.SortByColumns({0});
  // Within equal keys, original order preserved.
  for (size_t r = 1; r < 5; ++r) EXPECT_LT(t.Value(r - 1, 1), t.Value(r, 1));
}

TEST(TableTest, DistinctCounts) {
  Table t(Schema({Int("a"), Int("b")}), "t");
  t.AppendRow({1, 1});
  t.AppendRow({1, 2});
  t.AppendRow({2, 1});
  t.AppendRow({2, 1});
  EXPECT_EQ(t.DistinctCount(0), 2u);
  EXPECT_EQ(t.DistinctCount(1), 2u);
  EXPECT_EQ(t.DistinctCountComposite({0, 1}), 3u);
}

TEST(TableTest, DataBytes) {
  Table t(Schema({Int("a", 4), Int("b", 6)}), "t");
  t.AppendRow({1, 1});
  t.AppendRow({2, 2});
  EXPECT_EQ(t.DataBytes(), 20u);
}

// ---------- Catalog ----------

TEST(CatalogTest, AddAndGet) {
  Catalog cat;
  auto t = std::make_unique<Table>(Schema({Int("a")}), "t1");
  Table* raw = cat.AddTable(std::move(t));
  EXPECT_EQ(cat.GetTable("t1"), raw);
  EXPECT_EQ(cat.GetTable("nope"), nullptr);
}

TEST(CatalogTest, FactRegistration) {
  Catalog cat;
  {
    auto dim = std::make_unique<Table>(Schema({Int("d_k"), Int("d_v")}), "dim");
    dim->AppendRow({1, 100});
    cat.AddTable(std::move(dim));
    auto fact = std::make_unique<Table>(Schema({Int("f_id"), Int("f_d")}), "fact");
    fact->AppendRow({1, 1});
    cat.AddTable(std::move(fact));
  }
  FactTableInfo info;
  info.name = "fact";
  info.primary_key = {"f_id"};
  info.foreign_keys = {{"f_d", "dim", "d_k"}};
  cat.RegisterFactTable(info);
  ASSERT_NE(cat.GetFactInfo("fact"), nullptr);
  EXPECT_EQ(cat.GetFactInfo("fact")->foreign_keys.size(), 1u);
  EXPECT_EQ(cat.GetFactInfo("dim"), nullptr);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog cat;
  cat.AddTable(std::make_unique<Table>(Schema({Int("x")}), "zeta"));
  cat.AddTable(std::make_unique<Table>(Schema({Int("x")}), "alpha"));
  const auto names = cat.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

// ---------- Universe ----------

class UniverseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dim = std::make_unique<Table>(
        Schema({Int("d_key"), Int("d_city"), Int("d_state")}), "dim");
    // d_city determines d_state: city c -> state c / 2.
    for (int64_t k = 0; k < 10; ++k) dim->AppendRow({k, k, k / 2});
    catalog_.AddTable(std::move(dim));

    auto fact = std::make_unique<Table>(
        Schema({Int("f_id"), Int("f_dim"), Int("f_val", 8)}), "fact");
    for (int64_t i = 0; i < 100; ++i) fact->AppendRow({i, i % 10, i * 2});
    catalog_.AddTable(std::move(fact));

    info_.name = "fact";
    info_.primary_key = {"f_id"};
    info_.foreign_keys = {{"f_dim", "dim", "d_key"}};
    catalog_.RegisterFactTable(info_);
  }

  Catalog catalog_;
  FactTableInfo info_;
};

TEST_F(UniverseTest, ColumnsAreFactThenDims) {
  Universe u(catalog_, info_);
  EXPECT_EQ(u.NumColumns(), 6u);  // 3 fact + 3 dim
  EXPECT_EQ(u.ColumnIndex("f_id"), 0);
  EXPECT_GE(u.ColumnIndex("d_city"), 3);
  EXPECT_EQ(u.ColumnIndex("nope"), -1);
}

TEST_F(UniverseTest, JoinValuesResolve) {
  Universe u(catalog_, info_);
  const int d_state = u.ColumnIndex("d_state");
  for (RowId r = 0; r < 100; ++r) {
    EXPECT_EQ(u.Value(r, d_state), static_cast<int64_t>((r % 10) / 2));
  }
}

TEST_F(UniverseTest, DistinctCounts) {
  Universe u(catalog_, info_);
  EXPECT_EQ(u.DistinctCount(u.ColumnIndex("d_city")), 10u);
  EXPECT_EQ(u.DistinctCount(u.ColumnIndex("d_state")), 5u);
  EXPECT_EQ(u.DistinctCountComposite(
                {u.ColumnIndex("d_city"), u.ColumnIndex("d_state")}),
            10u);  // city determines state
}

TEST_F(UniverseTest, MaterializeProjection) {
  Universe u(catalog_, info_);
  auto t = u.MaterializeProjection(
      {u.ColumnIndex("f_val"), u.ColumnIndex("d_state")}, "mv");
  ASSERT_EQ(t->NumRows(), 100u);
  EXPECT_EQ(t->schema().Column(0).name, "f_val");
  EXPECT_EQ(t->schema().Column(1).name, "d_state");
  EXPECT_EQ(t->Value(13, 0), 26);
  EXPECT_EQ(t->Value(13, 1), 1);  // dim 3 -> state 1
  EXPECT_EQ(t->schema().RowWidthBytes(), 12u);
}

TEST_F(UniverseTest, MakeSchemaCarriesWidths) {
  Universe u(catalog_, info_);
  Schema s = u.MakeSchema({u.ColumnIndex("f_val")});
  EXPECT_EQ(s.RowWidthBytes(), 8u);
}

}  // namespace
}  // namespace coradd
