// Parameterized property sweeps across module boundaries: invariants that
// must hold for *any* input in the swept family, complementing the
// example-based tests in the per-module files.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "ilp/branch_and_bound.h"
#include "ilp/domination.h"
#include "ilp/greedy_mk.h"
#include "ssb/ssb.h"
#include "stats/histogram.h"
#include "storage/layout.h"

namespace coradd {
namespace {

// ---------- Histogram: estimates within bounds for any data shape ----------

struct HistCase {
  uint64_t seed;
  size_t rows;
  int64_t domain;
  size_t buckets;
  bool zipf;
};

class HistogramPropertyTest : public ::testing::TestWithParam<HistCase> {};

TEST_P(HistogramPropertyTest, RangeEstimateTracksExactCount) {
  const HistCase c = GetParam();
  Rng rng(c.seed);
  std::vector<int64_t> values;
  values.reserve(c.rows);
  for (size_t i = 0; i < c.rows; ++i) {
    values.push_back(static_cast<int64_t>(
        c.zipf ? rng.Zipf(static_cast<uint64_t>(c.domain), 0.9)
               : rng.Uniform(static_cast<uint64_t>(c.domain))));
  }
  const Histogram h = Histogram::Build(values, c.buckets);
  Rng qrng(c.seed * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = qrng.UniformInt(0, c.domain - 1);
    int64_t hi = qrng.UniformInt(0, c.domain - 1);
    if (lo > hi) std::swap(lo, hi);
    size_t exact = 0;
    for (int64_t v : values) {
      if (v >= lo && v <= hi) ++exact;
    }
    const double est = h.SelectivityRange(lo, hi);
    const double truth = static_cast<double>(exact) / c.rows;
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 1.0 + 1e-12);
    // Within-bucket uniformity bounds the error by ~2 bucket masses.
    EXPECT_NEAR(est, truth, 2.0 / static_cast<double>(c.buckets) + 0.02)
        << "range [" << lo << "," << hi << "]";
  }
}

TEST_P(HistogramPropertyTest, SelectivitiesSumToOneOverPartition) {
  const HistCase c = GetParam();
  Rng rng(c.seed);
  std::vector<int64_t> values;
  for (size_t i = 0; i < c.rows; ++i) {
    values.push_back(static_cast<int64_t>(
        c.zipf ? rng.Zipf(static_cast<uint64_t>(c.domain), 0.9)
               : rng.Uniform(static_cast<uint64_t>(c.domain))));
  }
  const Histogram h = Histogram::Build(values, c.buckets);
  // Disjoint thirds of the domain partition all rows.
  const int64_t a = c.domain / 3, b = 2 * c.domain / 3;
  const double total = h.SelectivityRange(0, a - 1) +
                       h.SelectivityRange(a, b - 1) +
                       h.SelectivityRange(b, c.domain - 1);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramPropertyTest,
    ::testing::Values(HistCase{1, 20000, 1000, 64, false},
                      HistCase{2, 20000, 1000, 64, true},
                      HistCase{3, 5000, 100000, 128, false},
                      HistCase{4, 5000, 100000, 128, true},
                      HistCase{5, 50000, 37, 256, false},
                      HistCase{6, 1000, 7, 4, true}));

// ---------- CoalescePages: coverage and minimality for any page set -------

class CoalescePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescePropertyTest, RunsCoverAllPagesExactlyOnce) {
  Rng rng(GetParam());
  std::vector<uint64_t> pages;
  const size_t n = 1 + rng.Uniform(500);
  for (size_t i = 0; i < n; ++i) pages.push_back(rng.Uniform(2000));
  std::sort(pages.begin(), pages.end());
  const uint64_t gap = rng.Uniform(5);
  const auto runs = CoalescePages(pages, gap);

  // Every input page is inside some run.
  for (uint64_t p : pages) {
    bool covered = false;
    for (const auto& r : runs) {
      if (p >= r.first_page && p <= r.last_page) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << p;
  }
  // Runs are sorted, non-overlapping, and separated by more than the gap
  // (otherwise they would have merged).
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GT(runs[i].first_page, runs[i - 1].last_page);
    EXPECT_GT(runs[i].first_page - runs[i - 1].last_page, gap + 1);
  }
  // Run endpoints are actual pages from the input.
  for (const auto& r : runs) {
    EXPECT_TRUE(std::binary_search(pages.begin(), pages.end(), r.first_page));
    EXPECT_TRUE(std::binary_search(pages.begin(), pages.end(), r.last_page));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

// ---------- BTreeShape: monotone and sane for any geometry ----------------

TEST(BTreeShapePropertyTest, MonotoneInEntries) {
  uint64_t prev_pages = 0;
  uint32_t prev_height = 0;
  for (uint64_t n : {10ull, 1000ull, 100000ull, 10000000ull, 1000000000ull}) {
    const BTreeShape s = ComputeBTreeShape(n, 12, 4);
    EXPECT_GE(s.TotalPages(), prev_pages);
    EXPECT_GE(s.height, prev_height);
    prev_pages = s.TotalPages();
    prev_height = s.height;
  }
}

TEST(BTreeShapePropertyTest, WiderEntriesNeedMorePages) {
  for (uint32_t bytes : {8u, 16u, 64u, 256u}) {
    const BTreeShape narrow = ComputeBTreeShape(1000000, bytes, 4);
    const BTreeShape wide = ComputeBTreeShape(1000000, bytes * 2, 4);
    EXPECT_GE(wide.leaf_pages, narrow.leaf_pages) << bytes;
  }
}

// ---------- Solver trio ordering on random instances ----------------------

class SolverOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverOrderingTest, ExactLeqGreedyMkAndDensityGreedy) {
  Rng rng(GetParam());
  SelectionProblem p;
  p.budget_bytes = 10 + rng.Uniform(40);
  p.sizes = {0};
  p.forced = {0};
  const size_t nm = 6 + rng.Uniform(14);
  for (size_t m = 1; m < nm; ++m) p.sizes.push_back(rng.Uniform(12) + 1);
  const size_t nq = 2 + rng.Uniform(6);
  p.costs.resize(nq);
  for (auto& row : p.costs) {
    row.push_back(50.0 + static_cast<double>(rng.Uniform(50)));
    for (size_t m = 1; m < nm; ++m) {
      row.push_back(rng.Bernoulli(0.4)
                        ? kInfeasibleCost
                        : 1.0 + static_cast<double>(rng.Uniform(40)));
    }
  }
  if (nm > 5 && rng.Bernoulli(0.5)) p.sos1_groups = {{1, 2, 3}};

  const SelectionResult exact = SolveSelectionExact(p);
  const SelectionResult mk = SolveSelectionGreedyMk(p);
  const SelectionResult density = SolveSelectionGreedyDensity(p);
  EXPECT_TRUE(exact.proved_optimal);
  EXPECT_LE(exact.expected_cost, mk.expected_cost + 1e-9);
  EXPECT_LE(exact.expected_cost, density.expected_cost + 1e-9);
  EXPECT_TRUE(SelectionFeasible(p, exact.chosen));
  EXPECT_TRUE(SelectionFeasible(p, mk.chosen));
  EXPECT_TRUE(SelectionFeasible(p, density.chosen));

  // Domination pruning must not change the exact optimum.
  const SelectionProblem pruned = CompactProblem(p, DominatedMask(p));
  EXPECT_NEAR(SolveSelectionExact(pruned).expected_cost, exact.expected_cost,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOrderingTest,
                         ::testing::Range<uint64_t>(500, 515));

// ---------- SSB scaling invariants ----------------------------------------

class SsbScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(SsbScaleTest, RowCountsScaleLinearly) {
  ssb::SsbOptions options;
  options.scale_factor = GetParam();
  auto catalog = ssb::MakeCatalog(options);
  EXPECT_EQ(catalog->GetTable("lineorder")->NumRows(),
            options.LineorderRows());
  // Date dimension is scale-independent.
  EXPECT_EQ(catalog->GetTable("date")->NumRows(), 2557u);
  // The universe join must resolve at every scale.
  Universe u(*catalog, *catalog->GetFactInfo("lineorder"));
  EXPECT_EQ(u.NumRows(), options.LineorderRows());
}

INSTANTIATE_TEST_SUITE_P(Scales, SsbScaleTest,
                         ::testing::Values(0.001, 0.002, 0.005));

}  // namespace
}  // namespace coradd
