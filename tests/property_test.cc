// Parameterized property sweeps across module boundaries: invariants that
// must hold for *any* input in the swept family, complementing the
// example-based tests in the per-module files.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/context.h"
#include "cost/correlation_cost_model.h"
#include "cost/cost_model.h"
#include "ilp/branch_and_bound.h"
#include "ilp/domination.h"
#include "ilp/greedy_mk.h"
#include "mv/index_merging.h"
#include "ssb/ssb.h"
#include "stats/histogram.h"
#include "storage/layout.h"

namespace coradd {
namespace {

// ---------- Histogram: estimates within bounds for any data shape ----------

struct HistCase {
  uint64_t seed;
  size_t rows;
  int64_t domain;
  size_t buckets;
  bool zipf;
};

class HistogramPropertyTest : public ::testing::TestWithParam<HistCase> {};

TEST_P(HistogramPropertyTest, RangeEstimateTracksExactCount) {
  const HistCase c = GetParam();
  Rng rng(c.seed);
  std::vector<int64_t> values;
  values.reserve(c.rows);
  for (size_t i = 0; i < c.rows; ++i) {
    values.push_back(static_cast<int64_t>(
        c.zipf ? rng.Zipf(static_cast<uint64_t>(c.domain), 0.9)
               : rng.Uniform(static_cast<uint64_t>(c.domain))));
  }
  const Histogram h = Histogram::Build(values, c.buckets);
  Rng qrng(c.seed * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = qrng.UniformInt(0, c.domain - 1);
    int64_t hi = qrng.UniformInt(0, c.domain - 1);
    if (lo > hi) std::swap(lo, hi);
    size_t exact = 0;
    for (int64_t v : values) {
      if (v >= lo && v <= hi) ++exact;
    }
    const double est = h.SelectivityRange(lo, hi);
    const double truth = static_cast<double>(exact) / c.rows;
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 1.0 + 1e-12);
    // Within-bucket uniformity bounds the error by ~2 bucket masses.
    EXPECT_NEAR(est, truth, 2.0 / static_cast<double>(c.buckets) + 0.02)
        << "range [" << lo << "," << hi << "]";
  }
}

TEST_P(HistogramPropertyTest, SelectivitiesSumToOneOverPartition) {
  const HistCase c = GetParam();
  Rng rng(c.seed);
  std::vector<int64_t> values;
  for (size_t i = 0; i < c.rows; ++i) {
    values.push_back(static_cast<int64_t>(
        c.zipf ? rng.Zipf(static_cast<uint64_t>(c.domain), 0.9)
               : rng.Uniform(static_cast<uint64_t>(c.domain))));
  }
  const Histogram h = Histogram::Build(values, c.buckets);
  // Disjoint thirds of the domain partition all rows.
  const int64_t a = c.domain / 3, b = 2 * c.domain / 3;
  const double total = h.SelectivityRange(0, a - 1) +
                       h.SelectivityRange(a, b - 1) +
                       h.SelectivityRange(b, c.domain - 1);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramPropertyTest,
    ::testing::Values(HistCase{1, 20000, 1000, 64, false},
                      HistCase{2, 20000, 1000, 64, true},
                      HistCase{3, 5000, 100000, 128, false},
                      HistCase{4, 5000, 100000, 128, true},
                      HistCase{5, 50000, 37, 256, false},
                      HistCase{6, 1000, 7, 4, true}));

// ---------- CoalescePages: coverage and minimality for any page set -------

class CoalescePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalescePropertyTest, RunsCoverAllPagesExactlyOnce) {
  Rng rng(GetParam());
  std::vector<uint64_t> pages;
  const size_t n = 1 + rng.Uniform(500);
  for (size_t i = 0; i < n; ++i) pages.push_back(rng.Uniform(2000));
  std::sort(pages.begin(), pages.end());
  const uint64_t gap = rng.Uniform(5);
  const auto runs = CoalescePages(pages, gap);

  // Every input page is inside some run.
  for (uint64_t p : pages) {
    bool covered = false;
    for (const auto& r : runs) {
      if (p >= r.first_page && p <= r.last_page) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << p;
  }
  // Runs are sorted, non-overlapping, and separated by more than the gap
  // (otherwise they would have merged).
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GT(runs[i].first_page, runs[i - 1].last_page);
    EXPECT_GT(runs[i].first_page - runs[i - 1].last_page, gap + 1);
  }
  // Run endpoints are actual pages from the input.
  for (const auto& r : runs) {
    EXPECT_TRUE(std::binary_search(pages.begin(), pages.end(), r.first_page));
    EXPECT_TRUE(std::binary_search(pages.begin(), pages.end(), r.last_page));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescePropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

// ---------- BTreeShape: monotone and sane for any geometry ----------------

TEST(BTreeShapePropertyTest, MonotoneInEntries) {
  uint64_t prev_pages = 0;
  uint32_t prev_height = 0;
  for (uint64_t n : {10ull, 1000ull, 100000ull, 10000000ull, 1000000000ull}) {
    const BTreeShape s = ComputeBTreeShape(n, 12, 4);
    EXPECT_GE(s.TotalPages(), prev_pages);
    EXPECT_GE(s.height, prev_height);
    prev_pages = s.TotalPages();
    prev_height = s.height;
  }
}

TEST(BTreeShapePropertyTest, WiderEntriesNeedMorePages) {
  for (uint32_t bytes : {8u, 16u, 64u, 256u}) {
    const BTreeShape narrow = ComputeBTreeShape(1000000, bytes, 4);
    const BTreeShape wide = ComputeBTreeShape(1000000, bytes * 2, 4);
    EXPECT_GE(wide.leaf_pages, narrow.leaf_pages) << bytes;
  }
}

// ---------- Solver trio ordering on random instances ----------------------

class SolverOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverOrderingTest, ExactLeqGreedyMkAndDensityGreedy) {
  Rng rng(GetParam());
  SelectionProblem p;
  p.budget_bytes = 10 + rng.Uniform(40);
  p.sizes = {0};
  p.forced = {0};
  const size_t nm = 6 + rng.Uniform(14);
  for (size_t m = 1; m < nm; ++m) p.sizes.push_back(rng.Uniform(12) + 1);
  const size_t nq = 2 + rng.Uniform(6);
  p.costs.resize(nq);
  for (auto& row : p.costs) {
    row.push_back(50.0 + static_cast<double>(rng.Uniform(50)));
    for (size_t m = 1; m < nm; ++m) {
      row.push_back(rng.Bernoulli(0.4)
                        ? kInfeasibleCost
                        : 1.0 + static_cast<double>(rng.Uniform(40)));
    }
  }
  if (nm > 5 && rng.Bernoulli(0.5)) p.sos1_groups = {{1, 2, 3}};

  const SelectionResult exact = SolveSelectionExact(p);
  const SelectionResult mk = SolveSelectionGreedyMk(p);
  const SelectionResult density = SolveSelectionGreedyDensity(p);
  EXPECT_TRUE(exact.proved_optimal);
  EXPECT_LE(exact.expected_cost, mk.expected_cost + 1e-9);
  EXPECT_LE(exact.expected_cost, density.expected_cost + 1e-9);
  EXPECT_TRUE(SelectionFeasible(p, exact.chosen));
  EXPECT_TRUE(SelectionFeasible(p, mk.chosen));
  EXPECT_TRUE(SelectionFeasible(p, density.chosen));

  // Domination pruning must not change the exact optimum.
  const SelectionProblem pruned = CompactProblem(p, DominatedMask(p));
  EXPECT_NEAR(SolveSelectionExact(pruned).expected_cost, exact.expected_cost,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOrderingTest,
                         ::testing::Range<uint64_t>(500, 515));

// ---------- Candidate generation: memoized pricing + pruning safety -------

/// Shared small-SSB pricing fixture (built once; the cost models are pure
/// functions of it).
struct CandgenFixture {
  std::unique_ptr<Catalog> catalog;
  Workload workload;
  std::unique_ptr<DesignContext> context;

  CandgenFixture() {
    ssb::SsbOptions options;
    options.scale_factor = 0.002;
    catalog = ssb::MakeCatalog(options);
    workload = ssb::MakeWorkload();
    StatsOptions sopt;
    sopt.sample_rows = 2048;
    sopt.disk.page_size_bytes = 1024;
    context = std::make_unique<DesignContext>(catalog.get(), workload, sopt);
  }
};

const CandgenFixture& SharedCandgenFixture() {
  static const CandgenFixture* fixture = new CandgenFixture();
  return *fixture;
}

/// Random MvSpec over the SSB universe: random stored-column subset with a
/// random clustered key drawn from it.
MvSpec RandomSpec(Rng* rng, const Workload& workload) {
  // Column pool: everything any query references (so some specs can serve
  // some queries), shuffled and truncated.
  std::vector<std::string> pool;
  for (const auto& q : workload.queries) {
    for (const auto& c : q.AllColumns()) {
      if (std::find(pool.begin(), pool.end(), c) == pool.end()) {
        pool.push_back(c);
      }
    }
  }
  for (size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng->Uniform(i)]);
  }
  MvSpec spec;
  spec.fact_table = "lineorder";
  spec.name = "prop_spec";
  const size_t num_cols = 3 + rng->Uniform(pool.size() - 3);
  spec.columns.assign(pool.begin(),
                      pool.begin() + static_cast<long>(num_cols));
  const size_t key_len = 1 + rng->Uniform(std::min<size_t>(5, num_cols));
  spec.clustered_key.assign(spec.columns.begin(),
                            spec.columns.begin() + static_cast<long>(key_len));
  return spec;
}

class CandgenPricingPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CandgenPricingPropertyTest, MemoizedPricesMatchFreshToTheLastBit) {
  const CandgenFixture& f = SharedCandgenFixture();
  Rng rng(GetParam());
  CorrelationCostModel warm(&f.context->registry());
  CorrelationCostModel fresh(&f.context->registry());
  for (int trial = 0; trial < 6; ++trial) {
    const MvSpec spec = RandomSpec(&rng, f.workload);
    for (const auto& q : f.workload.queries) {
      const double first = warm.Seconds(q, spec);   // computes + memoizes
      const double memo = warm.Seconds(q, spec);    // pure memo hit
      const double cold = fresh.Seconds(q, spec);   // freshly computed
      EXPECT_EQ(first, memo) << q.id;               // bitwise
      EXPECT_EQ(first, cold) << q.id;               // bitwise
      // The generation pruning bound never exceeds the true model cost.
      EXPECT_LE(warm.CostLowerBound(q, spec), first) << q.id;
    }
  }
}

TEST_P(CandgenPricingPropertyTest, PruningNeverDropsBestInterleaving) {
  const CandgenFixture& f = SharedCandgenFixture();
  Rng rng(GetParam() * 131 + 5);
  CorrelationCostModel model(&f.context->registry());

  // Random small-arity group; prune off == exhaustive enumeration (every
  // order-preserving interleaving under the cap is priced).
  QueryGroup group;
  const size_t arity = 2 + rng.Uniform(2);
  while (group.size() < arity) {
    const int qi = static_cast<int>(rng.Uniform(f.workload.queries.size()));
    if (std::find(group.begin(), group.end(), qi) == group.end()) {
      group.push_back(qi);
    }
  }
  std::sort(group.begin(), group.end());

  IndexMergingOptions pruned_options;
  pruned_options.t = 1 + static_cast<int>(rng.Uniform(3));
  IndexMergingOptions exhaustive_options = pruned_options;
  exhaustive_options.prune_trials = false;
  ClusteredIndexDesigner pruned(&f.context->registry(), &model,
                                pruned_options);
  ClusteredIndexDesigner exhaustive(&f.context->registry(), &model,
                                    exhaustive_options);

  const std::vector<MvSpec> a =
      pruned.DesignGroup(f.workload, group, "lineorder");
  const std::vector<MvSpec> b =
      exhaustive.DesignGroup(f.workload, group, "lineorder");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(a[i].clustered_key, b[i].clustered_key) << i;
    EXPECT_EQ(a[i].columns, b[i].columns) << i;
  }
  // Every trial the exhaustive designer priced was either priced or
  // provably dominated under pruning — never silently lost.
  EXPECT_EQ(pruned.trials_priced() + pruned.trials_pruned(),
            exhaustive.trials_priced() + exhaustive.trials_pruned());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CandgenPricingPropertyTest,
                         ::testing::Range<uint64_t>(700, 708));

// ---------- SSB scaling invariants ----------------------------------------

class SsbScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(SsbScaleTest, RowCountsScaleLinearly) {
  ssb::SsbOptions options;
  options.scale_factor = GetParam();
  auto catalog = ssb::MakeCatalog(options);
  EXPECT_EQ(catalog->GetTable("lineorder")->NumRows(),
            options.LineorderRows());
  // Date dimension is scale-independent.
  EXPECT_EQ(catalog->GetTable("date")->NumRows(), 2557u);
  // The universe join must resolve at every scale.
  Universe u(*catalog, *catalog->GetFactInfo("lineorder"));
  EXPECT_EQ(u.NumRows(), options.LineorderRows());
}

INSTANTIATE_TEST_SUITE_P(Scales, SsbScaleTest,
                         ::testing::Values(0.001, 0.002, 0.005));

}  // namespace
}  // namespace coradd
