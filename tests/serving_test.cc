// Tests for src/serving: shared-scan vs solo bit-identity, deterministic
// grouping counters, admission backpressure, exactly-once delivery under
// concurrent clients, maintenance interleaved with reads (split invariance
// vs the isolated simulator), and the engine's shared buffer pool (pooled
// results bit-identical to solo at any thread count, warm reruns free,
// maintenance ratio still exact, exactly-once dirty write-back under
// concurrent scans + writer epochs). The cheap ServingSmoke* cases run as
// the `serving_smoke` ctest entry; ServingStress* interleaving-hungry cases
// run in the full suite and the TSan CI leg.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cost/correlation_cost_model.h"
#include "serving/client_driver.h"
#include "serving/serving.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

using serving::ArrivalMode;
using serving::ClientRunOptions;
using serving::MakeLookalikeStream;
using serving::RunClients;
using serving::ServingEngine;
using serving::ServingOptions;
using serving::ServingRunStats;
using serving::ServingStats;
using serving::TicketResult;

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.003;
    catalog_ = ssb::MakeCatalog(options).release();
    workload_ = new Workload(ssb::MakeWorkload());
    StatsOptions sopt;
    sopt.sample_rows = 2048;
    sopt.disk.page_size_bytes = 1024;
    context_ = new DesignContext(catalog_, *workload_, sopt);
    planner_ = new CorrelationCostModel(&context_->registry());
  }
  static void TearDownTestSuite() {
    delete planner_;
    delete context_;
    delete workload_;
    delete catalog_;
  }

  /// Base-only design (every query routed to the PK-clustered base): all
  /// plans are full scans of the same object, so shared-scan grouping is
  /// maximal — the regime the grouping/bit-identity tests want.
  static DatabaseDesign BaseOnlyDesign() {
    DatabaseDesign d;
    d.designer = "base-only";
    DesignedObject obj;
    obj.spec.name = "base";
    obj.spec.fact_table = "lineorder";
    const Universe* u = context_->UniverseForFact("lineorder");
    for (size_t c = 0; c < u->fact_table().schema().NumColumns(); ++c) {
      obj.spec.columns.push_back(u->fact_table().schema().Column(c).name);
    }
    obj.spec.clustered_key = {"lo_orderkey", "lo_linenumber"};
    obj.spec.is_fact_recluster = true;
    obj.spec.is_base = true;
    d.objects.push_back(obj);
    d.object_for_query.assign(workload_->queries.size(), 0);
    return d;
  }

  static void ExpectMatchesSolo(const ServingEngine& engine,
                                const TicketResult& got, size_t query_index) {
    const QueryRunResult want = engine.RunSolo(query_index);
    // Bit-identical doubles: EXPECT_EQ, not EXPECT_NEAR.
    EXPECT_EQ(got.aggregate, want.aggregate) << got.query_id;
    EXPECT_EQ(got.rows_output, want.rows_output) << got.query_id;
    EXPECT_EQ(got.simulated_seconds, want.seconds) << got.query_id;
    EXPECT_EQ(got.pages_read, want.pages_read) << got.query_id;
    EXPECT_EQ(got.path, want.path) << got.query_id;
  }

  static Catalog* catalog_;
  static Workload* workload_;
  static DesignContext* context_;
  static CorrelationCostModel* planner_;
};

Catalog* ServingTest::catalog_ = nullptr;
Workload* ServingTest::workload_ = nullptr;
DesignContext* ServingTest::context_ = nullptr;
CorrelationCostModel* ServingTest::planner_ = nullptr;

// ---------- Smoke: bit-identity and deterministic counters ----------

// Queries served through a shared pass return results bit-identical to a
// solo QueryExecutor run: same aggregate bits, rows, simulated seconds and
// pages (the engine's determinism contract, docs/SERVING.md).
TEST_F(ServingTest, ServingSmokeSharedMatchesSoloBitIdentical) {
  const DatabaseDesign design = BaseOnlyDesign();
  ThreadPool pool(2);
  ServingOptions options;
  options.exec.pool = &pool;
  ServingEngine engine(context_, &design, *&workload_, planner_, options);

  // Duplicates of hot queries force >= 2-member groups; singles stay solo.
  std::vector<size_t> batch = {0, 1, 0, 2, 1, 0, 3, 2};
  auto futures = engine.SubmitBatch(batch);
  engine.Start();
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectMatchesSolo(engine, futures[i].get(), batch[i]);
  }
  engine.Stop();

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, batch.size());
  EXPECT_EQ(stats.completed, batch.size());
  EXPECT_EQ(stats.shared_executed + stats.solo_executed, batch.size());
  EXPECT_GT(stats.shared_executed, 0u);
}

// With the batch admitted before Start, epoch composition is fixed, so the
// grouping counters are exact: the base-only design full-scans one object,
// so every query lands in ONE group regardless of query identity.
TEST_F(ServingTest, ServingSmokeGroupingCountersDeterministic) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingOptions options;
  options.deterministic = true;
  ServingEngine engine(context_, &design, workload_, planner_, options);

  auto futures = engine.SubmitBatch({0, 0, 0, 1});
  engine.Start();
  for (auto& f : futures) f.get();
  engine.Stop();

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.shared_executed, 4u);  // identical full-scan ranges
  EXPECT_EQ(stats.solo_executed, 0u);
  // 4 members but only 2 distinct queries: the duplicate tickets of query
  // 0 are answered from the representative's computation.
  EXPECT_EQ(stats.lookalike_hits, 2u);
}

// shared_scan=false is the A/B control: every ticket executes solo and the
// results are still bit-identical to reference runs.
TEST_F(ServingTest, ServingSmokeBatchingOffRunsAllSolo) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingOptions options;
  options.shared_scan = false;
  ServingEngine engine(context_, &design, workload_, planner_, options);

  std::vector<size_t> batch = {0, 0, 1, 1};
  auto futures = engine.SubmitBatch(batch);
  engine.Start();
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectMatchesSolo(engine, futures[i].get(), batch[i]);
  }
  engine.Stop();

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.shared_executed, 0u);
  EXPECT_EQ(stats.solo_executed, batch.size());
  EXPECT_EQ(stats.groups, 0u);
}

// Submit blocks while the queue is at admission_capacity and resumes when
// the dispatcher drains; the high-water gauge records the full queue.
TEST_F(ServingTest, ServingSmokeAdmissionBackpressure) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingOptions options;
  options.admission_capacity = 4;
  ServingEngine engine(context_, &design, workload_, planner_, options);

  auto futures = engine.SubmitBatch({0, 1, 2, 3});  // fills the queue
  std::atomic<bool> fifth_admitted{false};
  std::thread blocked([&] {
    auto f = engine.Submit(0);  // blocks: queue full, engine not started
    fifth_admitted.store(true);
    f.get();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fifth_admitted.load());

  engine.Start();  // dispatcher drains -> space -> the submit unblocks
  blocked.join();
  EXPECT_TRUE(fifth_admitted.load());
  for (auto& f : futures) f.get();
  engine.Stop();

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.queue_depth_high_water, 4u);
}

// Deterministic mode: two engines fed the same stream produce identical
// results AND identical counters (unit execution is serialized in
// formation order).
TEST_F(ServingTest, ServingSmokeDeterministicModeReproducible) {
  const DatabaseDesign design = BaseOnlyDesign();
  const std::vector<size_t> stream =
      MakeLookalikeStream(workload_->queries.size(), 12, /*seed=*/7);

  auto run_once = [&](std::vector<TicketResult>* results) {
    ServingOptions options;
    options.deterministic = true;
    ServingEngine engine(context_, &design, workload_, planner_, options);
    auto futures = engine.SubmitBatch(stream);
    engine.Start();
    for (auto& f : futures) results->push_back(f.get());
    engine.Stop();
    return engine.stats();
  };
  std::vector<TicketResult> a, b;
  const ServingStats sa = run_once(&a);
  const ServingStats sb = run_once(&b);

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].aggregate, b[i].aggregate);
    EXPECT_EQ(a[i].rows_output, b[i].rows_output);
    EXPECT_EQ(a[i].simulated_seconds, b[i].simulated_seconds);
    EXPECT_EQ(a[i].shared, b[i].shared);
    EXPECT_EQ(a[i].epoch, b[i].epoch);
  }
  EXPECT_EQ(sa.shared_executed, sb.shared_executed);
  EXPECT_EQ(sa.solo_executed, sb.solo_executed);
  EXPECT_EQ(sa.groups, sb.groups);
  EXPECT_EQ(sa.epochs, sb.epochs);
}

// Maintenance routed through the engine is split-invariant: batches
// submitted through SubmitMaintenance + FinishMaintenance cost exactly what
// one isolated SimulateInsertions run of the same total costs.
TEST_F(ServingTest, ServingSmokeMaintenanceMatchesIsolatedSimulation) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingEngine engine(context_, &design, workload_, planner_, {});

  MaintenanceOptions mopt;
  mopt.buffer_pool_pages = 500;
  const std::vector<MaintainedObject> objects =
      engine.DerivedMaintainedObjects();
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_TRUE(objects[0].append_only);
  EXPECT_GT(objects[0].heap_pages, 0u);

  engine.ConfigureMaintenance(objects, mopt);
  engine.Start();
  engine.SubmitMaintenance(3000);
  engine.SubmitMaintenance(7000);
  const MaintenanceResult served = engine.FinishMaintenance();
  engine.Stop();

  MaintenanceOptions iso = mopt;
  iso.num_inserts = 10000;
  const MaintenanceResult isolated = SimulateInsertions(objects, iso);
  EXPECT_EQ(served.seconds, isolated.seconds);
  EXPECT_EQ(served.pages_written, isolated.pages_written);
  EXPECT_EQ(served.pool_misses, isolated.pool_misses);
  EXPECT_EQ(served.dirty_evictions, isolated.dirty_evictions);

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.maintenance_batches, 2u);
  EXPECT_EQ(stats.maintenance_inserts, 10000u);
}

// The pool accessors the engine sizes its epochs from: capacity counts
// workers + the caller; an idle pool has no active participants.
TEST(ServingPoolTest, ParticipantAccessors) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.participant_capacity(), 4u);
  EXPECT_EQ(pool.active_participants(), 0u);
  std::atomic<size_t> max_seen{0};
  pool.ParallelFor(64, [&](size_t) {
    const size_t cur = pool.active_participants();
    size_t prev = max_seen.load();
    while (cur > prev && !max_seen.compare_exchange_weak(prev, cur)) {
    }
  });
  EXPECT_GE(max_seen.load(), 1u);
  EXPECT_EQ(pool.active_participants(), 0u);
}

// ---------- Stress: concurrency (full suite + TSan CI leg) ----------

// Eight closed-loop clients submitting concurrently: every future resolves
// exactly once, every result is bit-identical to its solo reference, and
// the engine's counters account for every ticket.
TEST_F(ServingTest, ServingStressExactlyOnceUnderConcurrentClients) {
  const DatabaseDesign design = BaseOnlyDesign();
  ThreadPool pool(4);
  ServingOptions options;
  options.admission_capacity = 16;  // keep backpressure in play
  options.exec.pool = &pool;
  ServingEngine engine(context_, &design, workload_, planner_, options);

  // Solo references, computed once up front.
  std::vector<QueryRunResult> solo(workload_->queries.size());
  for (size_t qi = 0; qi < solo.size(); ++qi) solo[qi] = engine.RunSolo(qi);

  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 25;
  engine.Start();
  std::atomic<uint64_t> delivered{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<size_t> stream = MakeLookalikeStream(
          workload_->queries.size(), kPerClient, /*seed=*/1000 + c);
      for (size_t qi : stream) {
        const TicketResult r = engine.Submit(qi).get();
        EXPECT_EQ(r.aggregate, solo[qi].aggregate) << r.query_id;
        EXPECT_EQ(r.rows_output, solo[qi].rows_output) << r.query_id;
        EXPECT_EQ(r.simulated_seconds, solo[qi].seconds) << r.query_id;
        EXPECT_GT(r.latency_seconds, 0.0);
        delivered.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.Stop();

  EXPECT_EQ(delivered.load(), kClients * kPerClient);
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.shared_executed + stats.solo_executed,
            kClients * kPerClient);
}

// Maintenance batches interleaved with concurrent readers: reads stay
// bit-identical to solo references (no torn aggregates across writer
// epochs) and the maintenance totals still equal the isolated simulation
// of the same insert total (writer epochs are exclusive and ordered).
TEST_F(ServingTest, ServingStressMaintenanceConcurrentWithReads) {
  const DatabaseDesign design = BaseOnlyDesign();
  ThreadPool pool(2);
  ServingOptions options;
  options.exec.pool = &pool;
  ServingEngine engine(context_, &design, workload_, planner_, options);

  MaintenanceOptions mopt;
  mopt.buffer_pool_pages = 500;
  const std::vector<MaintainedObject> objects =
      engine.DerivedMaintainedObjects();
  engine.ConfigureMaintenance(objects, mopt);

  std::vector<QueryRunResult> solo(workload_->queries.size());
  for (size_t qi = 0; qi < solo.size(); ++qi) solo[qi] = engine.RunSolo(qi);

  engine.Start();
  constexpr size_t kReaders = 4;
  constexpr size_t kPerReader = 20;
  std::vector<std::thread> readers;
  for (size_t c = 0; c < kReaders; ++c) {
    readers.emplace_back([&, c] {
      const std::vector<size_t> stream = MakeLookalikeStream(
          workload_->queries.size(), kPerReader, /*seed=*/2000 + c);
      for (size_t qi : stream) {
        const TicketResult r = engine.Submit(qi).get();
        EXPECT_EQ(r.aggregate, solo[qi].aggregate) << r.query_id;
        EXPECT_EQ(r.rows_output, solo[qi].rows_output) << r.query_id;
      }
    });
  }
  constexpr uint64_t kBatches = 5;
  constexpr uint64_t kPerBatch = 1000;
  for (uint64_t b = 0; b < kBatches; ++b) {
    engine.SubmitMaintenance(kPerBatch).get();
  }
  for (auto& t : readers) t.join();
  const MaintenanceResult served = engine.FinishMaintenance();
  engine.Stop();

  MaintenanceOptions iso = mopt;
  iso.num_inserts = kBatches * kPerBatch;
  const MaintenanceResult isolated = SimulateInsertions(objects, iso);
  EXPECT_EQ(served.seconds, isolated.seconds);
  EXPECT_EQ(served.pages_written, isolated.pages_written);

  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.completed, kReaders * kPerReader);
  EXPECT_EQ(stats.maintenance_batches, kBatches);
  EXPECT_EQ(stats.maintenance_inserts, kBatches * kPerBatch);
}

// The multi-client driver end to end: closed-loop clients over a started
// engine produce a coherent stats block (QPS, ordered percentiles, shared +
// solo accounting for every completion).
TEST_F(ServingTest, ServingStressClientDriverStats) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingEngine engine(context_, &design, workload_, planner_, {});
  engine.Start();

  std::vector<std::vector<size_t>> streams;
  for (size_t c = 0; c < 4; ++c) {
    streams.push_back(
        MakeLookalikeStream(workload_->queries.size(), 10, 3000 + c));
  }
  const ServingRunStats run = RunClients(&engine, streams);
  engine.Stop();

  EXPECT_EQ(run.completed, 40u);
  EXPECT_EQ(run.latencies.size(), 40u);
  EXPECT_EQ(run.shared + run.solo, 40u);
  EXPECT_GT(run.qps, 0.0);
  EXPECT_LE(run.p50_latency_seconds, run.p95_latency_seconds);
  EXPECT_LE(run.p95_latency_seconds, run.p99_latency_seconds);
}

// ---------- Shared buffer pool (engine-level) ----------

// Pooling changes COSTS, never RESULTS: with the engine's shared pool on,
// aggregates/rows/paths stay bit-identical to the cold solo reference, while
// simulated seconds may drop (warm pages are free). Pool counters must stay
// coherent, and pool_fraction sizing must quote the working set.
TEST_F(ServingTest, ServingSmokePooledResultsBitIdenticalToSolo) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingOptions options;
  options.pool_fraction = 0.25;
  ServingEngine engine(context_, &design, workload_, planner_, options);

  ASSERT_NE(engine.page_pool(), nullptr);
  const uint64_t ws = engine.WorkingSetPages();
  ASSERT_GT(ws, 0u);
  EXPECT_EQ(engine.page_pool()->capacity_pages(),
            std::max<uint64_t>(1, static_cast<uint64_t>(0.25 * ws)));

  const std::vector<size_t> batch = {0, 1, 0, 2, 1, 0, 3, 2};
  auto futures = engine.SubmitBatch(batch);
  engine.Start();
  for (size_t i = 0; i < batch.size(); ++i) {
    const TicketResult r = futures[i].get();
    const QueryRunResult want = engine.RunSolo(batch[i]);
    EXPECT_EQ(r.aggregate, want.aggregate) << r.query_id;
    EXPECT_EQ(r.rows_output, want.rows_output) << r.query_id;
    EXPECT_EQ(r.path, want.path) << r.query_id;
  }
  engine.Stop();

  const ServingStats stats = engine.stats();
  EXPECT_GT(stats.pool.touches, 0u);
  EXPECT_EQ(stats.pool.hits + stats.pool.misses, stats.pool.touches);
  EXPECT_EQ(stats.pool.pinned, 0u);
  EXPECT_LE(stats.pool.resident, engine.page_pool()->capacity_pages());
}

// An engine whose pool covers the whole working set serves a repeat of the
// same queries entirely from memory: the second pass costs exactly zero
// simulated seconds and reads zero pages — every touch is a pool hit.
TEST_F(ServingTest, ServingSmokePooledWarmRerunIsFree) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingOptions options;
  options.deterministic = true;
  options.pool_fraction = 1.0;  // capacity == working set: fully cacheable
  // One shard: capacity is split per shard, so at EXACT working-set fit the
  // hash skew of a multi-shard split would overflow some shards and evict.
  // A single shard makes "pool == working set" airtight (docs/SERVING.md
  // recommends slack or fewer shards when full residency matters).
  options.pool_shards = 1;
  ServingEngine engine(context_, &design, workload_, planner_, options);
  ASSERT_NE(engine.page_pool(), nullptr);

  engine.Start();
  const std::vector<size_t> batch = {0, 2, 3};
  // Cold pass warms the pool (and must still cost real simulated time).
  for (auto& f : engine.SubmitBatch(batch)) {
    EXPECT_GT(f.get().simulated_seconds, 0.0);
  }
  // Warm pass: all resident, all free — and still bit-identical results.
  std::vector<std::future<TicketResult>> warm = engine.SubmitBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    const TicketResult r = warm[i].get();
    EXPECT_EQ(r.simulated_seconds, 0.0) << r.query_id;
    EXPECT_EQ(r.pages_read, 0u) << r.query_id;
    EXPECT_GT(r.pool_hits, 0u) << r.query_id;
    const QueryRunResult want = engine.RunSolo(batch[i]);
    EXPECT_EQ(r.aggregate, want.aggregate) << r.query_id;
    EXPECT_EQ(r.rows_output, want.rows_output) << r.query_id;
  }
  engine.Stop();
}

// Pooled aggregates are bit-identical at ANY thread count: hit/miss
// interleavings (and therefore costs) may differ run to run, but results
// must not — the pool sits on the billing path only.
TEST_F(ServingTest, ServingSmokePooledResultsSameAtAnyThreadCount) {
  const DatabaseDesign design = BaseOnlyDesign();
  const std::vector<size_t> batch = {0, 1, 2, 3, 0, 1, 2, 3};

  std::vector<std::vector<double>> aggs;
  std::vector<std::vector<uint64_t>> rows;
  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ServingOptions options;
    options.pool_pages = 64;
    options.exec.pool = &pool;
    ServingEngine engine(context_, &design, workload_, planner_, options);
    auto futures = engine.SubmitBatch(batch);
    engine.Start();
    std::vector<double> a;
    std::vector<uint64_t> n;
    for (auto& f : futures) {
      const TicketResult r = f.get();
      a.push_back(r.aggregate);
      n.push_back(r.rows_output);
    }
    engine.Stop();
    aggs.push_back(std::move(a));
    rows.push_back(std::move(n));
  }
  for (size_t i = 1; i < aggs.size(); ++i) {
    EXPECT_EQ(aggs[i], aggs[0]);  // bit-identical doubles
    EXPECT_EQ(rows[i], rows[0]);
  }
}

// The maintenance mirror writes the same dirtied PageKeys into the shared
// pool WITHOUT touching the simulator's own pool/disk/RNG, so the served
// maintenance cost still equals the isolated simulation exactly (ratio
// 1.000) even with pooling on.
TEST_F(ServingTest, ServingSmokePooledMaintenanceRatioStillExact) {
  const DatabaseDesign design = BaseOnlyDesign();
  ServingOptions options;
  options.pool_pages = 200;
  ServingEngine engine(context_, &design, workload_, planner_, options);
  ASSERT_NE(engine.page_pool(), nullptr);

  MaintenanceOptions mopt;
  mopt.buffer_pool_pages = 500;
  const std::vector<MaintainedObject> objects =
      engine.DerivedMaintainedObjects();
  engine.ConfigureMaintenance(objects, mopt);
  engine.Start();
  engine.SubmitMaintenance(3000);
  engine.SubmitMaintenance(7000);
  const MaintenanceResult served = engine.FinishMaintenance();
  engine.Stop();

  MaintenanceOptions iso = mopt;
  iso.num_inserts = 10000;
  const MaintenanceResult isolated = SimulateInsertions(objects, iso);
  EXPECT_EQ(served.seconds, isolated.seconds);
  EXPECT_EQ(served.pages_written, isolated.pages_written);
  EXPECT_EQ(served.pool_misses, isolated.pool_misses);
  EXPECT_EQ(served.dirty_evictions, isolated.dirty_evictions);
  // The mirror did reach the shared pool: writer epochs dirtied pages there.
  EXPECT_GT(engine.stats().pool.touches, 0u);
}

// Concurrent pooled scans + maintenance writer epochs: results stay
// bit-identical to solo references, the maintenance ratio stays exact, and
// dirty write-backs are charged to the pool's disk exactly once (no lost or
// doubled charges under concurrency) — verified by draining the pool with
// FlushAll and comparing the disk's write counter against the pool's.
TEST_F(ServingTest, ServingStressPooledScansVsMaintenanceWriter) {
  const DatabaseDesign design = BaseOnlyDesign();
  ThreadPool pool(4);
  ServingOptions options;
  options.pool_fraction = 0.5;
  options.exec.pool = &pool;
  ServingEngine engine(context_, &design, workload_, planner_, options);
  ASSERT_NE(engine.page_pool(), nullptr);

  MaintenanceOptions mopt;
  mopt.buffer_pool_pages = 500;
  const std::vector<MaintainedObject> objects =
      engine.DerivedMaintainedObjects();
  engine.ConfigureMaintenance(objects, mopt);

  std::vector<QueryRunResult> solo(workload_->queries.size());
  for (size_t qi = 0; qi < solo.size(); ++qi) solo[qi] = engine.RunSolo(qi);

  engine.Start();
  constexpr size_t kReaders = 4;
  constexpr size_t kPerReader = 20;
  std::vector<std::thread> readers;
  for (size_t c = 0; c < kReaders; ++c) {
    readers.emplace_back([&, c] {
      const std::vector<size_t> stream = MakeLookalikeStream(
          workload_->queries.size(), kPerReader, /*seed=*/4000 + c);
      for (size_t qi : stream) {
        const TicketResult r = engine.Submit(qi).get();
        EXPECT_EQ(r.aggregate, solo[qi].aggregate) << r.query_id;
        EXPECT_EQ(r.rows_output, solo[qi].rows_output) << r.query_id;
      }
    });
  }
  constexpr uint64_t kBatches = 5;
  constexpr uint64_t kPerBatch = 1000;
  for (uint64_t b = 0; b < kBatches; ++b) {
    engine.SubmitMaintenance(kPerBatch).get();
  }
  for (auto& t : readers) t.join();
  const MaintenanceResult served = engine.FinishMaintenance();
  engine.Stop();

  MaintenanceOptions iso = mopt;
  iso.num_inserts = kBatches * kPerBatch;
  const MaintenanceResult isolated = SimulateInsertions(objects, iso);
  EXPECT_EQ(served.seconds, isolated.seconds);
  EXPECT_EQ(served.pages_written, isolated.pages_written);

  // Exactly-once write-back accounting: after draining every dirty page,
  // the pool's disk has one WritePage per recorded write-back.
  engine.page_pool()->FlushAll();
  const ServingStats stats = engine.stats();
  EXPECT_EQ(stats.pool.hits + stats.pool.misses, stats.pool.touches);
  EXPECT_EQ(stats.pool.resident_dirty, 0u);
  EXPECT_EQ(engine.pool_disk().pages_written(), stats.pool.dirty_writebacks);
  EXPECT_EQ(stats.completed, kReaders * kPerReader);
}

}  // namespace
}  // namespace coradd
