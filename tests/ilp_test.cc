// Tests for src/ilp: the two-phase simplex LP solver, selection-problem
// semantics, exact branch-and-bound vs brute force, Greedy(m,k), and
// dominated-candidate pruning (§5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "ilp/branch_and_bound.h"
#include "ilp/domination.h"
#include "ilp/greedy_mk.h"
#include "ilp/ilp_problem.h"
#include "ilp/lp.h"

namespace coradd {
namespace {

// ---------- LP solver ----------

TEST(LpSolverTest, SimpleTwoVariableOptimum) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2.  Optimal at (2, 2): -6.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-1, -2};
  lp.AddRow({1, 1}, 4);
  lp.upper_bounds = {3, 2};
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-6);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
  EXPECT_NEAR(s.x[1], 2.0, 1e-6);
}

TEST(LpSolverTest, DetectsInfeasible) {
  // x <= -1 with x >= 0.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.AddRow({1}, -1);
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(LpSolverTest, DetectsUnbounded) {
  // min -x with only x >= 0: unbounded below.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1};
  lp.AddRow({-1}, 0);  // -x <= 0, vacuous
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(LpSolverTest, GreaterEqualConstraintViaNegativeRhs) {
  // min x  s.t. x >= 2  (encoded -x <= -2).
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.AddRow({-1}, -2);
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-6);
}

TEST(LpSolverTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-1, -1};
  lp.AddRow({1, 0}, 1);
  lp.AddRow({1, 0}, 1);
  lp.AddRow({0, 1}, 1);
  lp.AddRow({1, 1}, 2);
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-6);
}

TEST(LpSolverTest, MediumRandomInstanceSolves) {
  Rng rng(99);
  LinearProgram lp;
  lp.num_vars = 40;
  for (int j = 0; j < 40; ++j) {
    lp.objective.push_back(-1.0 - static_cast<double>(rng.Uniform(10)));
  }
  for (int i = 0; i < 30; ++i) {
    std::vector<double> row(40);
    for (auto& v : row) v = static_cast<double>(rng.Uniform(5));
    lp.AddRow(std::move(row), 50.0 + static_cast<double>(rng.Uniform(50)));
  }
  lp.upper_bounds.assign(40, 3.0);
  const LpSolution s = SolveLp(lp);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_LT(s.objective, 0.0);
  // Feasibility of the returned point.
  for (size_t r = 0; r < lp.rows.size(); ++r) {
    double lhs = 0;
    for (int j = 0; j < 40; ++j) lhs += lp.rows[r][static_cast<size_t>(j)] * s.x[static_cast<size_t>(j)];
    EXPECT_LE(lhs, lp.rhs[r] + 1e-6);
  }
}

// ---------- Selection helpers ----------

SelectionProblem TinyProblem() {
  // 1 base (forced, size 0) + 3 candidates; 2 queries.
  SelectionProblem p;
  p.sizes = {0, 10, 10, 15};
  p.costs = {
      {10.0, 1.0, kInfeasibleCost, 2.0},   // q0
      {10.0, kInfeasibleCost, 1.0, 2.0},   // q1
  };
  p.budget_bytes = 20;
  p.forced = {0};
  return p;
}

TEST(SelectionTest, EvaluateUsesBestChosen) {
  const SelectionProblem p = TinyProblem();
  std::vector<int> best;
  EXPECT_NEAR(EvaluateSelection(p, {0}, &best), 20.0, 1e-12);
  EXPECT_EQ(best, (std::vector<int>{0, 0}));
  EXPECT_NEAR(EvaluateSelection(p, {0, 1}, &best), 11.0, 1e-12);
  EXPECT_EQ(best[0], 1);
  EXPECT_NEAR(EvaluateSelection(p, {0, 3}, &best), 4.0, 1e-12);
}

TEST(SelectionTest, FeasibilityChecks) {
  SelectionProblem p = TinyProblem();
  EXPECT_TRUE(SelectionFeasible(p, {0, 1, 2}));   // 20 <= 20
  EXPECT_FALSE(SelectionFeasible(p, {0, 1, 3}));  // 25 > 20
  EXPECT_FALSE(SelectionFeasible(p, {1}));        // forced 0 missing
  p.sos1_groups = {{1, 2}};
  EXPECT_FALSE(SelectionFeasible(p, {0, 1, 2}));
}

TEST(SelectionTest, WeightsScaleCosts) {
  SelectionProblem p = TinyProblem();
  p.query_weights = {2.0, 1.0};
  EXPECT_NEAR(EvaluateSelection(p, {0}), 30.0, 1e-12);
}

// ---------- Branch & bound ----------

TEST(BranchAndBoundTest, PicksPairOverSharedWhenBudgetAllows) {
  const SelectionProblem p = TinyProblem();
  const SelectionResult r = SolveSelectionExact(p);
  EXPECT_TRUE(r.proved_optimal);
  // {1,2} costs 2.0 total beats {3} at 4.0; both fit in 20.
  EXPECT_NEAR(r.expected_cost, 2.0, 1e-12);
  EXPECT_EQ(r.chosen, (std::vector<int>{0, 1, 2}));
}

TEST(BranchAndBoundTest, TightBudgetPrefersShared) {
  SelectionProblem p = TinyProblem();
  p.budget_bytes = 15;  // only the shared MV fits
  const SelectionResult r = SolveSelectionExact(p);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_NEAR(r.expected_cost, 4.0, 1e-12);
  EXPECT_EQ(r.chosen, (std::vector<int>{0, 3}));
}

TEST(BranchAndBoundTest, RespectsSos1) {
  SelectionProblem p = TinyProblem();
  p.sos1_groups = {{1, 2}};  // candidates 1 and 2 conflict
  const SelectionResult r = SolveSelectionExact(p);
  EXPECT_TRUE(r.proved_optimal);
  // Best feasible: {3} at 4.0 (1+2 would be 2.0 but conflicts; 1+3 = 3.0
  // costs 25 bytes > budget).
  EXPECT_NEAR(r.expected_cost, 4.0, 1e-12);
}

TEST(BranchAndBoundTest, ZeroBudgetKeepsBaseOnly) {
  SelectionProblem p = TinyProblem();
  p.budget_bytes = 0;
  const SelectionResult r = SolveSelectionExact(p);
  EXPECT_EQ(r.chosen, (std::vector<int>{0}));
  EXPECT_NEAR(r.expected_cost, 20.0, 1e-12);
}

/// Exhaustive reference solver.
double BruteForce(const SelectionProblem& p) {
  const size_t n = p.NumCandidates();
  double best = kInfeasibleCost;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<int> chosen;
    for (size_t m = 0; m < n; ++m) {
      if (mask & (1ull << m)) chosen.push_back(static_cast<int>(m));
    }
    if (!SelectionFeasible(p, chosen)) continue;
    best = std::min(best, EvaluateSelection(p, chosen));
  }
  return best;
}

struct RandomInstanceParam {
  uint64_t seed;
  size_t num_candidates;
  size_t num_queries;
  uint64_t budget;
  bool with_sos1;
};

class BnbVsBruteForceTest
    : public ::testing::TestWithParam<RandomInstanceParam> {};

TEST_P(BnbVsBruteForceTest, MatchesExhaustiveOptimum) {
  const auto param = GetParam();
  Rng rng(param.seed);
  SelectionProblem p;
  p.budget_bytes = param.budget;
  p.sizes.push_back(0);  // base
  for (size_t m = 1; m < param.num_candidates; ++m) {
    p.sizes.push_back(rng.Uniform(10) + 1);
  }
  p.forced = {0};
  p.costs.resize(param.num_queries);
  for (size_t q = 0; q < param.num_queries; ++q) {
    p.costs[q].push_back(50.0 + static_cast<double>(rng.Uniform(50)));  // base
    for (size_t m = 1; m < param.num_candidates; ++m) {
      if (rng.Bernoulli(0.4)) {
        p.costs[q].push_back(kInfeasibleCost);
      } else {
        p.costs[q].push_back(1.0 + static_cast<double>(rng.Uniform(40)));
      }
    }
  }
  if (param.with_sos1 && param.num_candidates >= 4) {
    p.sos1_groups = {{1, 2, 3}};
  }
  const double brute = BruteForce(p);
  const SelectionResult r = SolveSelectionExact(p);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_NEAR(r.expected_cost, brute, 1e-9) << "seed " << param.seed;
  EXPECT_TRUE(SelectionFeasible(p, r.chosen));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BnbVsBruteForceTest,
    ::testing::Values(RandomInstanceParam{1, 8, 3, 12, false},
                      RandomInstanceParam{2, 10, 5, 20, false},
                      RandomInstanceParam{3, 12, 4, 15, true},
                      RandomInstanceParam{4, 14, 6, 25, true},
                      RandomInstanceParam{5, 10, 8, 8, false},
                      RandomInstanceParam{6, 12, 2, 40, true},
                      RandomInstanceParam{7, 14, 5, 5, false},
                      RandomInstanceParam{8, 16, 4, 30, true}));

TEST(BranchAndBoundTest, GreedyNeverBeatsExact) {
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    SelectionProblem p;
    p.budget_bytes = 25;
    p.sizes = {0};
    p.forced = {0};
    for (int m = 1; m < 20; ++m) p.sizes.push_back(rng.Uniform(12) + 1);
    p.costs.resize(6);
    for (auto& row : p.costs) {
      row.push_back(100.0);
      for (int m = 1; m < 20; ++m) {
        row.push_back(rng.Bernoulli(0.5)
                          ? kInfeasibleCost
                          : 1.0 + static_cast<double>(rng.Uniform(80)));
      }
    }
    const SelectionResult exact = SolveSelectionExact(p);
    const SelectionResult greedy = SolveSelectionGreedyDensity(p);
    EXPECT_LE(exact.expected_cost, greedy.expected_cost + 1e-9);
    EXPECT_TRUE(exact.proved_optimal);
  }
}

// ---------- Greedy(m,k) ----------

TEST(GreedyMkTest, FindsSeedPairGreedyWouldMiss) {
  // Two complementary MVs each useless alone; a mediocre single MV.
  // Plain greedy picks the mediocre one first and exhausts the budget;
  // Greedy(2,k)'s exhaustive phase finds the pair — the reason [5] has the
  // exhaustive phase at all.
  SelectionProblem p;
  p.sizes = {0, 10, 10, 12};
  p.budget_bytes = 20;
  p.forced = {0};
  p.costs = {
      {100.0, 100.0, 1.0, 60.0},
      {100.0, 1.0, 100.0, 60.0},
  };
  const SelectionResult r = SolveSelectionGreedyMk(p, GreedyMkOptions{2, 100});
  EXPECT_NEAR(r.expected_cost, 2.0, 1e-12);
}

TEST(GreedyMkTest, RespectsK) {
  SelectionProblem p;
  p.sizes = {0, 1, 1, 1};
  p.budget_bytes = 100;
  p.forced = {0};
  p.costs = {{9, 1, 9, 9}, {9, 9, 1, 9}, {9, 9, 9, 1}};
  const SelectionResult r = SolveSelectionGreedyMk(p, GreedyMkOptions{0, 2});
  // Only two adds allowed beyond forced.
  EXPECT_EQ(r.chosen.size(), 3u);
}

TEST(GreedyMkTest, NeverBetterThanExact) {
  for (uint64_t seed = 200; seed < 206; ++seed) {
    Rng rng(seed);
    SelectionProblem p;
    p.budget_bytes = 18;
    p.sizes = {0};
    p.forced = {0};
    for (int m = 1; m < 14; ++m) p.sizes.push_back(rng.Uniform(9) + 1);
    p.costs.resize(5);
    for (auto& row : p.costs) {
      row.push_back(60.0);
      for (int m = 1; m < 14; ++m) {
        row.push_back(rng.Bernoulli(0.4)
                          ? kInfeasibleCost
                          : 1.0 + static_cast<double>(rng.Uniform(50)));
      }
    }
    const double exact = SolveSelectionExact(p).expected_cost;
    const double greedy = SolveSelectionGreedyMk(p).expected_cost;
    EXPECT_LE(exact, greedy + 1e-9) << seed;
  }
}

// ---------- Domination (Table 4) ----------

TEST(DominationTest, PaperTable4Scenario) {
  // MV1 dominates MV2 (smaller & faster everywhere m2 serves) but not MV3
  // (m3 uniquely serves q1).
  SelectionProblem p;
  p.sizes = {1ull << 30, 2ull << 30, 3ull << 30};
  p.costs = {
      {1.0, 5.0, 5.0},                          // Q1
      {kInfeasibleCost, kInfeasibleCost, 5.0},  // Q2
      {1.0, 2.0, 5.0},                          // Q3
  };
  p.budget_bytes = 10ull << 30;
  const auto mask = DominatedMask(p);
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
}

TEST(DominationTest, EqualTwinsKeepOne) {
  SelectionProblem p;
  p.sizes = {5, 5};
  p.costs = {{1.0, 1.0}};
  p.budget_bytes = 100;
  const auto mask = DominatedMask(p);
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
}

TEST(DominationTest, ForcedNeverDominated) {
  SelectionProblem p;
  p.sizes = {5, 0};
  p.costs = {{1.0, 10.0}};
  p.forced = {1};
  p.budget_bytes = 100;
  const auto mask = DominatedMask(p);
  EXPECT_FALSE(mask[1]);
}

TEST(DominationTest, PruningPreservesOptimum) {
  for (uint64_t seed = 300; seed < 308; ++seed) {
    Rng rng(seed);
    SelectionProblem p;
    p.budget_bytes = 20;
    p.sizes = {0};
    p.forced = {0};
    for (int m = 1; m < 14; ++m) p.sizes.push_back(rng.Uniform(8) + 1);
    p.costs.resize(4);
    for (auto& row : p.costs) {
      row.push_back(60.0);
      for (int m = 1; m < 14; ++m) {
        row.push_back(rng.Bernoulli(0.3)
                          ? kInfeasibleCost
                          : 1.0 + static_cast<double>(rng.Uniform(30)));
      }
    }
    const double before = SolveSelectionExact(p).expected_cost;
    const SelectionProblem pruned = CompactProblem(p, DominatedMask(p));
    const double after = SolveSelectionExact(pruned).expected_cost;
    EXPECT_NEAR(before, after, 1e-9) << seed;
  }
}

TEST(DominationTest, CompactRemapsSos1AndForced) {
  SelectionProblem p;
  p.sizes = {0, 5, 5, 7};
  p.costs = {
      {10, 1, 1, 2},                                // q0
      {10, kInfeasibleCost, kInfeasibleCost, 3.0},  // q1: only 3 serves it
  };
  p.forced = {0};
  p.sos1_groups = {{1, 2, 3}};
  p.budget_bytes = 100;
  std::vector<int> old_index;
  const SelectionProblem c = CompactProblem(p, DominatedMask(p), &old_index);
  // Candidate 2 (twin of 1) is gone; 3 survives via q1; group remapped.
  EXPECT_EQ(c.NumCandidates(), 3u);
  EXPECT_EQ(c.forced, (std::vector<int>{0}));
  ASSERT_EQ(c.sos1_groups.size(), 1u);
  EXPECT_EQ(c.sos1_groups[0].size(), 2u);
  EXPECT_EQ(old_index[0], 0);
  EXPECT_EQ(old_index[2], 3);
}

// ---------- Paper ILP formulation ----------

TEST(PaperIlpTest, VariableAndConstraintCounts) {
  const SelectionProblem p = TinyProblem();
  const PaperIlpFormulation form = BuildPaperIlp(p);
  // y: 4. Feasible per query: q0 -> {0,1,3}, q1 -> {0,2,3}: x per (q, r>=2)
  // = 2 + 2.
  EXPECT_EQ(form.num_y, 4);
  EXPECT_EQ(form.num_x, 4);
  // Constraints: 4 penalty rows + budget + forced-base row.
  EXPECT_EQ(form.num_constraints, 6);
  EXPECT_EQ(form.orderings[0].front(), 1);  // fastest for q0
}

TEST(PaperIlpTest, RelaxationLowerBoundsExact) {
  for (uint64_t seed = 400; seed < 406; ++seed) {
    Rng rng(seed);
    SelectionProblem p;
    p.budget_bytes = 15;
    p.sizes = {0};
    p.forced = {0};
    for (int m = 1; m < 10; ++m) p.sizes.push_back(rng.Uniform(8) + 1);
    p.costs.resize(4);
    for (auto& row : p.costs) {
      row.push_back(50.0);
      for (int m = 1; m < 10; ++m) {
        row.push_back(rng.Bernoulli(0.4)
                          ? kInfeasibleCost
                          : 1.0 + static_cast<double>(rng.Uniform(40)));
      }
    }
    const PaperIlpFormulation form = BuildPaperIlp(p);
    const LpSolution relax = SolvePaperLpRelaxation(form);
    ASSERT_EQ(relax.status, LpStatus::kOptimal) << seed;
    const double exact = SolveSelectionExact(p).expected_cost;
    EXPECT_LE(relax.objective, exact + 1e-6) << seed;
    // The relaxation is itself bounded below by the all-chosen cost.
    std::vector<int> all;
    for (size_t m = 0; m < p.NumCandidates(); ++m) all.push_back(static_cast<int>(m));
    EXPECT_GE(relax.objective, EvaluateSelection(p, all) - 1e-6) << seed;
  }
}

TEST(PaperIlpTest, RelaxationMatchesExactWhenIntegral) {
  // On the tiny instance the LP relaxation is integral.
  const SelectionProblem p = TinyProblem();
  const LpSolution relax = SolvePaperLpRelaxation(BuildPaperIlp(p));
  ASSERT_EQ(relax.status, LpStatus::kOptimal);
  EXPECT_NEAR(relax.objective, SolveSelectionExact(p).expected_cost, 1e-6);
}

}  // namespace
}  // namespace coradd
