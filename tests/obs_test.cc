// Tests for src/obs: span tracer (nesting, thread attribution, ring-buffer
// overflow, Chrome trace JSON validity) and the metrics registry (counter /
// gauge / histogram correctness under multi-thread hammering), plus the
// determinism contract — a full design+evaluate pipeline is bit-identical
// with tracing on vs off. The BitIdentity test rebuilds an SSB fixture
// twice and is excluded from the obs_smoke ctest filter.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "benchkit/json_parser.h"
#include "common/thread_pool.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

using benchkit::JsonValue;
using benchkit::ParseJson;

/// Restores a quiet tracer no matter how the test exits.
struct TracerGuard {
  TracerGuard() {
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().Clear();
  }
  ~TracerGuard() {
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().Clear();
  }
};

TEST(ObsTraceTest, DisabledByDefaultAndRecordsNothing) {
  TracerGuard guard;
  EXPECT_FALSE(obs::TraceEnabled());
  { TRACE_SPAN("test.noop", {{"k", 1}}); }
  EXPECT_EQ(obs::Tracer::Global().recorded_events(), 0u);
}

TEST(ObsTraceTest, SpanNestingAndArgs) {
  TracerGuard guard;
  obs::Tracer::Global().Start();
  {
    TRACE_SPAN_NAMED(outer, "test.outer", {{"n", 7}});
    outer.Arg("late", 42);
    { TRACE_SPAN("test.inner"); }
  }
  obs::Tracer::Global().Stop();
  EXPECT_EQ(obs::Tracer::Global().recorded_events(), 2u);

  const std::string json = obs::Tracer::Global().ToChromeTraceJson();
  const auto doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);

  const JsonValue* outer_ev = nullptr;
  const JsonValue* inner_ev = nullptr;
  for (const JsonValue& e : events->AsArray()) {
    if (e.StringOr("name", "") == "test.outer") outer_ev = &e;
    if (e.StringOr("name", "") == "test.inner") inner_ev = &e;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_EQ(outer_ev->StringOr("ph", ""), "X");
  EXPECT_EQ(outer_ev->StringOr("cat", ""), "test");
  const JsonValue* args = outer_ev->Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->NumberOr("n", -1), 7);
  EXPECT_EQ(args->NumberOr("late", -1), 42);

  // Inner spans nest inside the outer [ts, ts+dur] window; ring order means
  // the inner (destroyed first) was recorded first.
  const double o_ts = outer_ev->NumberOr("ts", -1);
  const double o_dur = outer_ev->NumberOr("dur", -1);
  const double i_ts = inner_ev->NumberOr("ts", -1);
  const double i_dur = inner_ev->NumberOr("dur", -1);
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_ts + i_dur, o_ts + o_dur + 0.002);  // 2us timestamp slack
}

TEST(ObsTraceTest, ThreadAttributionAndNames) {
  TracerGuard guard;
  obs::Tracer::Global().Start();
  obs::Tracer::SetCurrentThreadName("obs-test-main");
  { TRACE_SPAN("test.main_side"); }
  std::thread t([] {
    obs::Tracer::SetCurrentThreadName("obs-test-worker");
    TRACE_SPAN("test.worker_side");
  });
  t.join();
  obs::Tracer::Global().Stop();

  const auto doc = ParseJson(obs::Tracer::Global().ToChromeTraceJson());
  ASSERT_TRUE(doc.ok());
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);

  double main_tid = -1, worker_tid = -1;
  std::vector<std::string> thread_names;
  for (const JsonValue& e : events->AsArray()) {
    const std::string name = e.StringOr("name", "");
    if (name == "test.main_side") main_tid = e.NumberOr("tid", -1);
    if (name == "test.worker_side") worker_tid = e.NumberOr("tid", -1);
    if (name == "thread_name") {
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      thread_names.push_back(args->StringOr("name", ""));
    }
  }
  EXPECT_GE(main_tid, 0);
  EXPECT_GE(worker_tid, 0);
  EXPECT_NE(main_tid, worker_tid);
  EXPECT_NE(std::find(thread_names.begin(), thread_names.end(),
                      "obs-test-main"),
            thread_names.end());
  EXPECT_NE(std::find(thread_names.begin(), thread_names.end(),
                      "obs-test-worker"),
            thread_names.end());
}

TEST(ObsTraceTest, RingBufferOverflowDropsOldest) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::Global();
  constexpr uint64_t kExtra = 100;
  const uint64_t total = obs::Tracer::kThreadBufferCapacity + kExtra;
  for (uint64_t i = 0; i < total; ++i) {
    obs::TraceEvent ev;
    ev.name = "test.flood";
    ev.ts_ns = i;
    ev.num_args = 1;
    ev.arg_keys[0] = "i";
    ev.arg_vals[0] = static_cast<int64_t>(i);
    tracer.Record(ev);
  }
  EXPECT_EQ(tracer.dropped_events(), kExtra);
  EXPECT_EQ(tracer.recorded_events(), obs::Tracer::kThreadBufferCapacity);

  // The survivors are exactly the newest capacity events.
  const auto doc = ParseJson(tracer.ToChromeTraceJson());
  ASSERT_TRUE(doc.ok());
  int64_t min_i = INT64_MAX, max_i = -1;
  size_t flood_events = 0;
  for (const JsonValue& e : doc.value().Find("traceEvents")->AsArray()) {
    if (e.StringOr("name", "") != "test.flood") continue;
    ++flood_events;
    const int64_t i = static_cast<int64_t>(e.Find("args")->NumberOr("i", -1));
    min_i = std::min(min_i, i);
    max_i = std::max(max_i, i);
  }
  EXPECT_EQ(flood_events, obs::Tracer::kThreadBufferCapacity);
  EXPECT_EQ(min_i, static_cast<int64_t>(kExtra));
  EXPECT_EQ(max_i, static_cast<int64_t>(total - 1));

  tracer.Clear();
  EXPECT_EQ(tracer.dropped_events(), 0u);
  EXPECT_EQ(tracer.recorded_events(), 0u);
}

TEST(ObsTraceTest, PoolSpansProduceValidJson) {
  TracerGuard guard;
  obs::Tracer::Global().Start();
  ThreadPool pool(4);
  pool.ParallelFor(64, [](size_t i) {
    TRACE_SPAN("test.pool_item", {{"i", static_cast<int64_t>(i)}});
  });
  pool.WaitIdle();
  obs::Tracer::Global().Stop();

  const auto doc = ParseJson(obs::Tracer::Global().ToChromeTraceJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t item_count = 0;
  for (const JsonValue& e : events->AsArray()) {
    // Every event carries the Chrome viewer's required fields.
    EXPECT_FALSE(e.StringOr("name", "").empty());
    const std::string ph = e.StringOr("ph", "");
    EXPECT_TRUE(ph == "X" || ph == "M");
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("pid"), nullptr);
    EXPECT_NE(e.Find("tid"), nullptr);
    if (ph == "X") {
      EXPECT_GE(e.NumberOr("dur", -1), 0);
    }
    if (e.StringOr("name", "") == "test.pool_item") ++item_count;
  }
  EXPECT_EQ(item_count, 64u);
}

TEST(ObsMetricsTest, CounterHammering) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("test.hammer_counter");
  ASSERT_NE(c, nullptr);
  c->Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  // Same name -> same object.
  EXPECT_EQ(reg.GetCounter("test.hammer_counter"), c);
}

#if GTEST_HAS_DEATH_TEST
TEST(ObsMetricsDeathTest, KindCollisionAborts) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.collision_counter");
  // Requesting an existing name as a different kind is a naming bug; the
  // registry aborts with a diagnostic rather than returning a pointer the
  // call site would blindly dereference.
  EXPECT_DEATH(reg.GetGauge("test.collision_counter"),
               "already registered");
}
#endif

TEST(ObsMetricsTest, HistogramHammering) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* h = reg.GetHistogram("test.hammer_hist");
  ASSERT_NE(h, nullptr);
  h->Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Observe(static_cast<uint64_t>(t) * 1000 + (i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count(), kThreads * kPerThread);
  EXPECT_EQ(h->Min(), 0u);      // thread 0 observes 0..99
  EXPECT_EQ(h->Max(), 7099u);   // thread 7's largest
  EXPECT_GT(h->Mean(), 0.0);
  // Power-of-two buckets: quantile upper bounds are exact within 2x.
  EXPECT_LE(h->Quantile(0.0), h->Quantile(1.0));
  EXPECT_GE(h->Quantile(1.0), 7099u);
  EXPECT_LE(h->Quantile(0.5), 2 * 7099u);
}

TEST(ObsMetricsTest, GaugeTracksValueAndHighWater) {
  obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("test.depth_gauge");
  ASSERT_NE(g, nullptr);
  g->Reset();
  g->Set(3);
  g->Set(17);
  g->Set(5);
  EXPECT_EQ(g->Value(), 5);
  EXPECT_EQ(g->Max(), 17);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 3);
  EXPECT_EQ(g->Max(), 17);
}

TEST(ObsMetricsTest, SnapshotAndDump) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.snap_counter")->Add(5);
  reg.GetGauge("test.snap_gauge")->Set(9);
  reg.GetHistogram("test.snap_hist")->Observe(1234);

  const std::vector<obs::MetricSnapshot> snaps = reg.Snapshot();
  ASSERT_GE(snaps.size(), 3u);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);  // sorted by name
  }
  bool saw_counter = false;
  for (const auto& s : snaps) {
    if (s.name == "test.snap_counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_GE(s.value, 5u);
    }
  }
  EXPECT_TRUE(saw_counter);

  const std::string dump = obs::DumpMetrics();
  EXPECT_NE(dump.find("test.snap_counter"), std::string::npos);
  EXPECT_NE(dump.find("test.snap_gauge"), std::string::npos);
  EXPECT_NE(dump.find("test.snap_hist"), std::string::npos);
  EXPECT_NE(dump.find("histogram"), std::string::npos);
}

TEST(ObsMetricsTest, ThreadPoolWorkerStats) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(256, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  pool.WaitIdle();
  EXPECT_EQ(sum.load(), 256u * 255u / 2);

  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 3u);
  uint64_t pool_tasks = 0;
  for (const auto& ws : stats) pool_tasks += ws.tasks_executed;
  // The caller participates in ParallelFor, so workers need not have run
  // every helper task; combined, all submitted helpers were consumed.
  EXPECT_GT(pool_tasks + pool.caller_tasks_executed(), 0u);
  EXPECT_GT(pool.queue_depth_high_water(), 0u);
}

TEST(ObsMetricsTest, SharedPoolRegistersMetrics) {
  ThreadPool::Shared().ParallelFor(64, [](size_t) {});
  ThreadPool::Shared().WaitIdle();
  bool saw_worker_metric = false;
  for (const auto& s : obs::MetricsRegistry::Global().Snapshot()) {
    if (s.name.rfind("thread_pool.shared.", 0) == 0) saw_worker_metric = true;
  }
  EXPECT_TRUE(saw_worker_metric);
}

// ---------- Determinism: tracing observes, never steers ----------

struct PipelineResult {
  std::vector<std::string> object_names;
  std::vector<int> object_for_query;
  double expected_seconds = 0.0;
  uint64_t object_bytes = 0;
  double run_total_seconds = 0.0;
  std::vector<double> per_query_aggregates;
};

PipelineResult RunTinyPipeline() {
  ssb::SsbOptions options;
  options.scale_factor = 0.002;
  auto catalog = ssb::MakeCatalog(options);
  Workload workload = ssb::MakeWorkload();
  StatsOptions sopt;
  sopt.sample_rows = 2048;
  sopt.disk.page_size_bytes = 1024;
  DesignContext context(catalog.get(), workload, sopt);

  CoraddOptions copt;
  copt.candidates.grouping.alphas = {0.0, 0.5};
  copt.candidates.grouping.restarts = 1;
  copt.feedback.max_iterations = 1;
  CoraddDesigner designer(&context, copt);
  const DatabaseDesign design = designer.Design(workload, 8ull << 20);

  DesignEvaluator evaluator(&context, /*cache_capacity=*/16);
  const WorkloadRunResult run =
      evaluator.Run(design, workload, designer.model());

  PipelineResult out;
  for (const auto& obj : design.objects) {
    out.object_names.push_back(obj.spec.name);
  }
  out.object_for_query = design.object_for_query;
  out.expected_seconds = design.expected_seconds;
  out.object_bytes = design.object_bytes;
  out.run_total_seconds = run.total_seconds;
  for (const auto& rec : run.per_query) {
    out.per_query_aggregates.push_back(rec.aggregate);
  }
  return out;
}

TEST(ObsBitIdentityTest, TraceOnVsOffIsBitIdentical) {
  TracerGuard guard;

  obs::Tracer::Global().Stop();
  const PipelineResult off = RunTinyPipeline();

  obs::Tracer::Global().Clear();
  obs::Tracer::Global().Start();
  const PipelineResult on = RunTinyPipeline();
  obs::Tracer::Global().Stop();
  EXPECT_GT(obs::Tracer::Global().recorded_events(), 0u);

  // Exact equality throughout — doubles compared bit-for-bit via ==.
  EXPECT_EQ(off.object_names, on.object_names);
  EXPECT_EQ(off.object_for_query, on.object_for_query);
  EXPECT_EQ(off.expected_seconds, on.expected_seconds);
  EXPECT_EQ(off.object_bytes, on.object_bytes);
  EXPECT_EQ(off.run_total_seconds, on.run_total_seconds);
  ASSERT_EQ(off.per_query_aggregates.size(), on.per_query_aggregates.size());
  for (size_t i = 0; i < off.per_query_aggregates.size(); ++i) {
    EXPECT_EQ(off.per_query_aggregates[i], on.per_query_aggregates[i]) << i;
  }
}

}  // namespace
}  // namespace coradd
