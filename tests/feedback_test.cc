// Tests for src/feedback (§6 ILP feedback): never worse than the plain ILP,
// grows the candidate pool from solutions, and respects the space budget.
#include <gtest/gtest.h>

#include "cost/correlation_cost_model.h"
#include "feedback/ilp_feedback.h"
#include "solver/solver.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class FeedbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.003;
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 2048;
    sopt.disk.page_size_bytes = 1024;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    model_ = new CorrelationCostModel(registry_);
    workload_ = new Workload(ssb::MakeWorkload());
    CandidateGeneratorOptions gopt;
    gopt.grouping.alphas = {0.0, 0.5};
    gopt.grouping.restarts = 1;
    generator_ = new MvCandidateGenerator(catalog_, registry_, model_, gopt);
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete workload_;
    delete model_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  static BuiltProblem InitialProblem(uint64_t budget) {
    CandidateSet set = generator_->Generate(*workload_);
    return BuildSelectionProblem(*workload_, std::move(set.mvs), *model_,
                                 *registry_, budget);
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static CorrelationCostModel* model_;
  static Workload* workload_;
  static MvCandidateGenerator* generator_;
};

Catalog* FeedbackTest::catalog_ = nullptr;
Universe* FeedbackTest::universe_ = nullptr;
UniverseStats* FeedbackTest::stats_ = nullptr;
StatsRegistry* FeedbackTest::registry_ = nullptr;
CorrelationCostModel* FeedbackTest::model_ = nullptr;
Workload* FeedbackTest::workload_ = nullptr;
MvCandidateGenerator* FeedbackTest::generator_ = nullptr;

TEST_F(FeedbackTest, NeverWorseThanInitialSolution) {
  const uint64_t budget = 8ull << 20;
  BuiltProblem initial = InitialProblem(budget);
  const double before = SolverEngine().Solve(initial.problem).expected_cost;
  FeedbackOptions options;
  options.max_iterations = 2;
  const FeedbackOutcome out = RunIlpFeedback(
      *workload_, *generator_, *model_, *registry_, std::move(initial),
      budget, options);
  EXPECT_LE(out.result.expected_cost, before + 1e-9);
  EXPECT_GE(out.iterations, 1);
}

TEST_F(FeedbackTest, AddsCandidatesFromSolution) {
  const uint64_t budget = 8ull << 20;
  const FeedbackOutcome out = RunIlpFeedback(
      *workload_, *generator_, *model_, *registry_, InitialProblem(budget),
      budget, FeedbackOptions{1, 6, 500});
  EXPECT_GT(out.candidates_added, 0u);
  EXPECT_GT(out.problem.specs.size(), 0u);
}

TEST_F(FeedbackTest, ZeroIterationsIsPlainSolve) {
  const uint64_t budget = 4ull << 20;
  BuiltProblem initial = InitialProblem(budget);
  const double plain = SolverEngine().Solve(initial.problem).expected_cost;
  const FeedbackOutcome out = RunIlpFeedback(
      *workload_, *generator_, *model_, *registry_, std::move(initial),
      budget, FeedbackOptions{0, 6, 500});
  EXPECT_NEAR(out.result.expected_cost, plain, 1e-9);
  EXPECT_EQ(out.candidates_added, 0u);
}

TEST_F(FeedbackTest, RespectsBudgetAfterFeedback) {
  for (uint64_t budget : {2ull << 20, 16ull << 20}) {
    const FeedbackOutcome out = RunIlpFeedback(
        *workload_, *generator_, *model_, *registry_, InitialProblem(budget),
        budget, FeedbackOptions{1, 4, 200});
    EXPECT_LE(out.result.used_bytes, budget);
    EXPECT_TRUE(SelectionFeasible(out.problem.problem, out.result.chosen));
  }
}

TEST_F(FeedbackTest, TighterBudgetNeverBeatsLooser) {
  const FeedbackOutcome tight = RunIlpFeedback(
      *workload_, *generator_, *model_, *registry_,
      InitialProblem(1ull << 20), 1ull << 20, FeedbackOptions{1, 4, 200});
  const FeedbackOutcome loose = RunIlpFeedback(
      *workload_, *generator_, *model_, *registry_,
      InitialProblem(32ull << 20), 32ull << 20, FeedbackOptions{1, 4, 200});
  EXPECT_GE(tight.result.expected_cost, loose.result.expected_cost - 1e-9);
}

}  // namespace
}  // namespace coradd
