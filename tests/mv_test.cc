// Tests for src/mv candidate generation (§4): selectivity vectors and
// Selectivity Propagation (Tables 1-2), k-means query grouping,
// order-preserving index merging, and FK re-clustering candidates.
#include <gtest/gtest.h>

#include "cost/correlation_cost_model.h"
#include "mv/candidate_generator.h"
#include "mv/fk_clustering.h"
#include "mv/index_merging.h"
#include "mv/kmeans.h"
#include "mv/query_grouping.h"
#include "mv/selectivity_vector.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class MvModuleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.005;
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    sopt.disk.page_size_bytes = 1024;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    model_ = new CorrelationCostModel(registry_);
    workload_ = new Workload(ssb::MakeWorkload());
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete model_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static CorrelationCostModel* model_;
  static Workload* workload_;
};

Catalog* MvModuleTest::catalog_ = nullptr;
Universe* MvModuleTest::universe_ = nullptr;
UniverseStats* MvModuleTest::stats_ = nullptr;
StatsRegistry* MvModuleTest::registry_ = nullptr;
CorrelationCostModel* MvModuleTest::model_ = nullptr;
Workload* MvModuleTest::workload_ = nullptr;

// ---------- Selectivity vectors (Tables 1-2) ----------

TEST_F(MvModuleTest, RawVectorHoldsPredicateSelectivities) {
  SelectivityVectorBuilder builder(stats_);
  const auto v = builder.Raw(workload_->queries[0]);  // Q1.1
  const int year = universe_->ColumnIndex("d_year");
  const int discount = universe_->ColumnIndex("lo_discount");
  const int price = universe_->ColumnIndex("lo_extendedprice");
  EXPECT_NEAR(v[static_cast<size_t>(year)], 1.0 / 7, 0.03);
  EXPECT_NEAR(v[static_cast<size_t>(discount)], 3.0 / 11, 0.05);
  EXPECT_EQ(v[static_cast<size_t>(price)], 1.0);
}

TEST_F(MvModuleTest, PropagationPushesYearmonthDownToYear) {
  // Table 2's key effect: Q1.2 predicates yearmonthnum only, but after
  // propagation d_year's selectivity drops to roughly a single year.
  SelectivityVectorBuilder builder(stats_);
  const Query& q12 = workload_->queries[1];
  const auto raw = builder.Raw(q12);
  const auto prop = builder.Propagated(q12);
  const int year = universe_->ColumnIndex("d_year");
  EXPECT_EQ(raw[static_cast<size_t>(year)], 1.0);
  EXPECT_LT(prop[static_cast<size_t>(year)], 0.5);
}

TEST_F(MvModuleTest, PropagationAlsoReachesOrderdate) {
  // yearmonthnum determines ~30 orderdates of ~2557: lo_orderdate's
  // propagated selectivity must fall well below 1.
  SelectivityVectorBuilder builder(stats_);
  const auto prop = builder.Propagated(workload_->queries[1]);
  const int od = universe_->ColumnIndex("lo_orderdate");
  EXPECT_LT(prop[static_cast<size_t>(od)], 0.3);
}

TEST_F(MvModuleTest, PropagationNeverIncreasesSelectivity) {
  SelectivityVectorBuilder builder(stats_);
  for (const auto& q : workload_->queries) {
    const auto raw = builder.Raw(q);
    const auto prop = builder.Propagated(q);
    for (size_t i = 0; i < raw.size(); ++i) {
      EXPECT_LE(prop[i], raw[i] + 1e-12) << q.id << " col " << i;
      EXPECT_GE(prop[i], 0.0);
    }
  }
}

TEST_F(MvModuleTest, PropagationTerminates) {
  // A-4: at most |A| steps. Run with the bound and without; same result.
  SelectivityVectorBuilder builder(stats_);
  const Query& q13 = workload_->queries[2];
  const auto bounded = builder.Propagated(q13);
  const auto generous = builder.Propagated(q13, 1000);
  for (size_t i = 0; i < bounded.size(); ++i) {
    EXPECT_NEAR(bounded[i], generous[i], 1e-9);
  }
}

TEST_F(MvModuleTest, ExtendedVectorEncodesTargetBytes) {
  SelectivityVectorBuilder builder(stats_);
  const Query& q11 = workload_->queries[0];
  const auto base = builder.Propagated(q11);
  const auto ext = ExtendWithTargets(base, q11, *stats_, 0.5);
  ASSERT_EQ(ext.size(), base.size() + universe_->NumColumns());
  const int price = universe_->ColumnIndex("lo_extendedprice");
  const int ck = universe_->ColumnIndex("lo_custkey");
  EXPECT_GT(ext[base.size() + static_cast<size_t>(price)], 0.0);  // used
  EXPECT_EQ(ext[base.size() + static_cast<size_t>(ck)], 0.0);     // unused
  // Alpha zero zeroes the extension.
  const auto ext0 = ExtendWithTargets(base, q11, *stats_, 0.0);
  EXPECT_EQ(ext0[base.size() + static_cast<size_t>(price)], 0.0);
}

// ---------- k-means ----------

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) points.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 10; ++i) points.push_back({100.0 + i * 0.01, 0.0});
  Rng rng(5);
  const KMeansResult r = KMeans(points, 2, &rng);
  for (int i = 1; i < 10; ++i) EXPECT_EQ(r.cluster_of[i], r.cluster_of[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(r.cluster_of[i], r.cluster_of[10]);
  EXPECT_NE(r.cluster_of[0], r.cluster_of[10]);
}

TEST(KMeansTest, KEqualsOnePutsAllTogether) {
  std::vector<std::vector<double>> points = {{1}, {2}, {3}};
  Rng rng(5);
  const KMeansResult r = KMeans(points, 1, &rng);
  EXPECT_EQ(r.cluster_of, std::vector<int>({0, 0, 0}));
}

TEST(KMeansTest, KEqualsNSeparatesDistinctPoints) {
  std::vector<std::vector<double>> points = {{1}, {50}, {1000}};
  Rng rng(5);
  const KMeansResult r = KMeans(points, 3, &rng);
  std::set<int> clusters(r.cluster_of.begin(), r.cluster_of.end());
  EXPECT_EQ(clusters.size(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicGivenRngState) {
  std::vector<std::vector<double>> points;
  Rng gen(17);
  for (int i = 0; i < 40; ++i) {
    points.push_back({gen.UniformDouble(), gen.UniformDouble()});
  }
  Rng r1(9), r2(9);
  const KMeansResult a = KMeans(points, 5, &r1);
  const KMeansResult b = KMeans(points, 5, &r2);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  std::vector<std::vector<double>> points;
  Rng gen(23);
  for (int i = 0; i < 60; ++i) {
    points.push_back({gen.UniformDouble() * 10, gen.UniformDouble() * 10});
  }
  double prev = 1e18;
  for (int k : {1, 4, 16, 60}) {
    Rng rng(3);
    const KMeansResult r = KMeans(points, k, &rng);
    EXPECT_LE(r.inertia, prev + 1e-9) << "k=" << k;
    prev = r.inertia;
  }
}

// ---------- Query grouping ----------

TEST_F(MvModuleTest, GroupsIncludeSingletonsAndAll) {
  QueryGrouper grouper(stats_);
  std::vector<int> indices;
  for (int i = 0; i < 13; ++i) indices.push_back(i);
  const auto groups = grouper.Groups(*workload_, indices);
  std::set<QueryGroup> set(groups.begin(), groups.end());
  for (int i = 0; i < 13; ++i) EXPECT_TRUE(set.count({i})) << i;
  EXPECT_TRUE(set.count(indices));
  EXPECT_GT(groups.size(), 14u);  // k-means contributes non-trivial groups
}

TEST_F(MvModuleTest, GroupsPartitionPerRun) {
  QueryGrouper grouper(stats_);
  std::vector<int> indices = {0, 1, 2};  // flight 1
  const auto groups = grouper.Groups(*workload_, indices);
  for (const auto& g : groups) {
    EXPECT_FALSE(g.empty());
    for (int qi : g) {
      EXPECT_GE(qi, 0);
      EXPECT_LT(qi, 3);
    }
    EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
  }
}

TEST_F(MvModuleTest, SimilarQueriesGroupTogether) {
  // Flight-1 queries (date+discount+quantity) should co-occur in some
  // group without flight-3 geography queries.
  QueryGrouper grouper(stats_);
  std::vector<int> indices;
  for (int i = 0; i < 13; ++i) indices.push_back(i);
  const auto groups = grouper.Groups(*workload_, indices);
  bool found_flight1_group = false;
  for (const auto& g : groups) {
    if (g.size() < 2 || g.size() > 3) continue;
    bool all_flight1 = true;
    for (int qi : g) all_flight1 &= qi <= 2;
    if (all_flight1) found_flight1_group = true;
  }
  EXPECT_TRUE(found_flight1_group);
}

// ---------- Clustered index designer ----------

TEST_F(MvModuleTest, DedicatedKeyOrdersByTypeThenSelectivity) {
  ClusteredIndexDesigner designer(registry_, model_);
  // Q1.3: EQ(weeknum), EQ(year), RANGE(discount), RANGE(quantity).
  const auto key = designer.DedicatedKey(workload_->queries[2], *stats_);
  ASSERT_EQ(key.size(), 4u);
  // Equalities first, most selective (weeknum 1/53 < year 1/7) first.
  EXPECT_EQ(key[0], "d_weeknuminyear");
  EXPECT_EQ(key[1], "d_year");
  // Ranges after; discount 3/11 vs quantity 10/50 — selectivity order.
  EXPECT_EQ(key[2], "lo_quantity");
  EXPECT_EQ(key[3], "lo_discount");
}

TEST_F(MvModuleTest, DedicatedKeyPutsInLast) {
  ClusteredIndexDesigner designer(registry_, model_);
  // Q4.1: EQ(c_region), EQ(s_region), IN(p_mfgr).
  const auto key = designer.DedicatedKey(workload_->queries[10], *stats_);
  ASSERT_EQ(key.size(), 3u);
  EXPECT_EQ(key[2], "p_mfgr");
}

TEST_F(MvModuleTest, InterleavingsPreserveOrder) {
  ClusteredIndexDesigner designer(registry_, model_);
  const auto merges = designer.Interleavings({"a", "b"}, {"x", "y"});
  EXPECT_EQ(merges.size(), 6u);  // C(4,2)
  for (const auto& m : merges) {
    ASSERT_EQ(m.size(), 4u);
    const auto pos = [&](const std::string& s) {
      return std::find(m.begin(), m.end(), s) - m.begin();
    };
    EXPECT_LT(pos("a"), pos("b"));
    EXPECT_LT(pos("x"), pos("y"));
  }
}

TEST_F(MvModuleTest, InterleavingsDropDuplicatesFromSecond) {
  ClusteredIndexDesigner designer(registry_, model_);
  const auto merges = designer.Interleavings({"a", "b"}, {"b", "c"});
  for (const auto& m : merges) {
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(std::count(m.begin(), m.end(), "b"), 1);
  }
}

TEST_F(MvModuleTest, ConcatenationOnlyModeYieldsTwo) {
  IndexMergingOptions options;
  options.concatenation_only = true;
  ClusteredIndexDesigner designer(registry_, model_, options);
  const auto merges = designer.Interleavings({"a", "b"}, {"x"});
  ASSERT_EQ(merges.size(), 2u);
  EXPECT_EQ(merges[0], (std::vector<std::string>{"a", "b", "x"}));
  EXPECT_EQ(merges[1], (std::vector<std::string>{"x", "a", "b"}));
}

TEST_F(MvModuleTest, DesignGroupEmitsAtMostT) {
  ClusteredIndexDesigner designer(registry_, model_);
  const QueryGroup group = {0, 1, 2};
  const auto specs = designer.DesignGroup(*workload_, group, "lineorder");
  EXPECT_GE(specs.size(), 1u);
  EXPECT_LE(specs.size(), 2u);  // default t = 2
  const auto specs6 =
      designer.DesignGroup(*workload_, group, "lineorder", 6);
  EXPECT_GT(specs6.size(), specs.size());
  EXPECT_LE(specs6.size(), 6u);
}

TEST_F(MvModuleTest, DesignGroupColumnsCoverAllQueries) {
  ClusteredIndexDesigner designer(registry_, model_);
  const QueryGroup group = {0, 1, 2};
  for (const auto& spec : designer.DesignGroup(*workload_, group, "lineorder")) {
    for (int qi : group) {
      for (const auto& col :
           workload_->queries[static_cast<size_t>(qi)].AllColumns()) {
        EXPECT_NE(std::find(spec.columns.begin(), spec.columns.end(), col),
                  spec.columns.end())
            << spec.name << " missing " << col;
      }
    }
    EXPECT_FALSE(spec.clustered_key.empty());
    EXPECT_LE(spec.clustered_key.size(), 7u);
    // Clustered key attrs must be stored in the MV.
    for (const auto& k : spec.clustered_key) {
      EXPECT_NE(std::find(spec.columns.begin(), spec.columns.end(), k),
                spec.columns.end());
    }
  }
}

TEST_F(MvModuleTest, BestClusteringIsNoWorseThanConcatOnly) {
  const QueryGroup group = {0, 3};  // Q1.1 + Q2.1: disjoint predicates
  ClusteredIndexDesigner interleaved(registry_, model_);
  IndexMergingOptions concat_options;
  concat_options.concatenation_only = true;
  ClusteredIndexDesigner concat(registry_, model_, concat_options);

  auto cost_of = [&](const std::vector<MvSpec>& specs) {
    double best = kInfeasibleCost;
    for (const auto& s : specs) {
      double total = 0.0;
      for (int qi : group) {
        total += model_->Seconds(workload_->queries[static_cast<size_t>(qi)], s);
      }
      best = std::min(best, total);
    }
    return best;
  };
  EXPECT_LE(cost_of(interleaved.DesignGroup(*workload_, group, "lineorder")),
            cost_of(concat.DesignGroup(*workload_, group, "lineorder")) + 1e-9);
}

// ---------- FK clustering ----------

TEST_F(MvModuleTest, FkCandidatesIncludeBaseAndAllFks) {
  const auto specs = FkReclusterCandidates(
      *catalog_->GetFactInfo("lineorder"), *stats_, *workload_);
  ASSERT_GE(specs.size(), 5u);  // base + 4 FKs at least
  EXPECT_TRUE(specs[0].is_base);
  EXPECT_EQ(specs[0].clustered_key,
            (std::vector<std::string>{"lo_orderkey", "lo_linenumber"}));
  std::set<std::string> keys;
  for (const auto& s : specs) {
    EXPECT_TRUE(s.is_fact_recluster);
    EXPECT_EQ(s.query_group.size(), workload_->queries.size());
    if (s.clustered_key.size() == 1) keys.insert(s.clustered_key[0]);
  }
  EXPECT_TRUE(keys.count("lo_orderdate"));
  EXPECT_TRUE(keys.count("lo_custkey"));
  EXPECT_TRUE(keys.count("lo_suppkey"));
  EXPECT_TRUE(keys.count("lo_partkey"));
  // Predicated fact columns appear too (discount/quantity).
  EXPECT_TRUE(keys.count("lo_discount"));
}

// ---------- Candidate generator ----------

TEST_F(MvModuleTest, GeneratorProducesRichCandidatePool) {
  CandidateGeneratorOptions options;
  options.grouping.alphas = {0.0, 0.5};
  MvCandidateGenerator generator(catalog_, registry_, model_, options);
  const CandidateSet set = generator.Generate(*workload_);
  EXPECT_GT(set.mvs.size(), 40u);
  size_t bases = 0, reclusters = 0, mvs = 0;
  for (const auto& s : set.mvs) {
    if (s.is_base) {
      ++bases;
    } else if (s.is_fact_recluster) {
      ++reclusters;
    } else {
      ++mvs;
    }
  }
  EXPECT_EQ(bases, 1u);
  EXPECT_GT(reclusters, 3u);
  EXPECT_GT(mvs, 30u);
  EXPECT_FALSE(set.groups.empty());
}

}  // namespace
}  // namespace coradd
