// Tests for src/solver: the parallel warm-started branch-and-bound engine.
// Planted-optimum knapsack instances, brute-force cross-checks, old-vs-new
// engine agreement on fig6-style problems, bit-identical determinism at
// 1/2/8 threads (including node-capped solves and warm starts), warm-start
// session mapping, and incremental re-pricing equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/correlation_cost_model.h"
#include "cost/cost_model.h"
#include "ilp/branch_and_bound.h"
#include "ilp/problem_builder.h"
#include "mv/candidate_generator.h"
#include "solver/solver.h"
#include "solver/warm_start.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

// ---------- Synthetic instances ----------

/// The fig6 generator: candidates serve 1-3 queries, bigger is better plus
/// noise, budget binds like the paper's mid-range points.
SelectionProblem Fig6Synthetic(size_t num_candidates, size_t num_queries,
                               uint64_t seed) {
  Rng rng(seed);
  SelectionProblem p;
  p.sizes = {0};
  p.forced = {0};
  p.costs.resize(num_queries);
  for (auto& row : p.costs) row.push_back(120.0);

  uint64_t total_bytes = 0;
  for (size_t m = 1; m < num_candidates; ++m) {
    const uint64_t size = (rng.Uniform(64) + 1) << 20;
    p.sizes.push_back(size);
    total_bytes += size;
    const size_t group = 1 + rng.Uniform(3);
    const double quality =
        120.0 / (1.0 + static_cast<double>(size >> 20) / 8.0);
    for (size_t g = 0; g < group; ++g) {
      const size_t q = rng.Uniform(num_queries);
      p.costs[q].resize(num_candidates, kInfeasibleCost);
      p.costs[q][m] = quality * (0.8 + 0.4 * rng.UniformDouble());
    }
  }
  for (auto& row : p.costs) row.resize(num_candidates, kInfeasibleCost);
  p.budget_bytes = total_bytes / 6;
  return p;
}

/// Small random instance in the style of ilp_test's brute-force suite.
SelectionProblem RandomInstance(uint64_t seed, size_t num_candidates,
                                size_t num_queries, uint64_t budget,
                                bool with_sos1) {
  Rng rng(seed);
  SelectionProblem p;
  p.budget_bytes = budget;
  p.sizes.push_back(0);
  for (size_t m = 1; m < num_candidates; ++m) {
    p.sizes.push_back(rng.Uniform(10) + 1);
  }
  p.forced = {0};
  p.costs.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    p.costs[q].push_back(50.0 + static_cast<double>(rng.Uniform(50)));
    for (size_t m = 1; m < num_candidates; ++m) {
      if (rng.Bernoulli(0.4)) {
        p.costs[q].push_back(kInfeasibleCost);
      } else {
        p.costs[q].push_back(1.0 + static_cast<double>(rng.Uniform(40)));
      }
    }
  }
  if (with_sos1 && num_candidates >= 4) {
    p.sos1_groups = {{1, 2, 3}};
  }
  return p;
}

/// Exhaustive reference solver.
double BruteForce(const SelectionProblem& p) {
  const size_t n = p.NumCandidates();
  double best = kInfeasibleCost;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<int> chosen;
    for (size_t m = 0; m < n; ++m) {
      if (mask & (1ull << m)) chosen.push_back(static_cast<int>(m));
    }
    if (!SelectionFeasible(p, chosen)) continue;
    best = std::min(best, EvaluateSelection(p, chosen));
  }
  return best;
}

// ---------- Planted optimum ----------

TEST(SolverEngineTest, FindsPlantedOptimum) {
  // One dedicated candidate per query at cost 1 (size 10), a decoy per
  // query that is bigger and slower, and a budget that fits exactly the
  // planted set. The unique optimum is base + all planted candidates.
  const size_t nq = 6;
  SelectionProblem p;
  p.sizes = {0};
  p.forced = {0};
  p.costs.resize(nq);
  for (auto& row : p.costs) row.push_back(100.0);
  std::vector<int> planted;
  for (size_t q = 0; q < nq; ++q) {
    planted.push_back(static_cast<int>(p.sizes.size()));
    p.sizes.push_back(10);
    for (size_t r = 0; r < nq; ++r) {
      p.costs[r].push_back(r == q ? 1.0 : kInfeasibleCost);
    }
    p.sizes.push_back(12);  // decoy: strictly worse, strictly bigger
    for (size_t r = 0; r < nq; ++r) {
      p.costs[r].push_back(r == q ? 2.0 : kInfeasibleCost);
    }
  }
  p.budget_bytes = 10 * nq;

  const SolverEngine engine;
  SolverStats stats;
  const SelectionResult r = engine.Solve(p, &stats);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_TRUE(stats.proved_optimal);
  EXPECT_NEAR(r.expected_cost, static_cast<double>(nq), 1e-12);
  std::vector<int> expect = {0};
  expect.insert(expect.end(), planted.begin(), planted.end());
  EXPECT_EQ(r.chosen, expect);
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_GT(stats.nodes_expanded, 0u);
}

TEST(SolverEngineTest, ForcedCandidateClaimsItsSos1Group) {
  // A forced member of an SOS1 group excludes its siblings, exactly like
  // the legacy engine's root group seeding — even when a sibling would be
  // beneficial and fits the budget.
  SelectionProblem p;
  p.sizes = {0, 10};
  p.forced = {0};
  p.costs = {
      {50.0, 1.0},
      {50.0, 1.0},
  };
  p.sos1_groups = {{0, 1}};
  p.budget_bytes = 100;
  const SelectionResult r = SolverEngine().Solve(p);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.chosen, (std::vector<int>{0}));
  EXPECT_TRUE(SelectionFeasible(p, r.chosen));
  // And a warm hint naming the sibling must not smuggle it back in.
  const std::vector<int> hint = {1};
  const SelectionResult warm = SolverEngine().Solve(p, nullptr, &hint);
  EXPECT_EQ(warm.chosen, (std::vector<int>{0}));
}

TEST(SolverEngineTest, PlantedSos1GroupKeepsOnlyBestRecluster) {
  // Two "reclusterings" in one SOS1 group; the better one must win and the
  // pair must never be chosen together.
  SelectionProblem p;
  p.sizes = {0, 10, 10};
  p.forced = {0};
  p.costs = {
      {50.0, 5.0, 2.0},
      {50.0, 5.0, 2.0},
  };
  p.sos1_groups = {{1, 2}};
  p.budget_bytes = 100;
  const SelectionResult r = SolverEngine().Solve(p);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.chosen, (std::vector<int>{0, 2}));
  EXPECT_NEAR(r.expected_cost, 4.0, 1e-12);
}

// ---------- Brute force ----------

TEST(SolverEngineTest, MatchesBruteForceOnRandomInstances) {
  const SolverEngine engine;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SelectionProblem p =
        RandomInstance(seed, 10 + seed % 5, 3 + seed % 4, 8 + 3 * seed,
                       seed % 2 == 0);
    const double brute = BruteForce(p);
    const SelectionResult r = engine.Solve(p);
    EXPECT_TRUE(r.proved_optimal) << "seed " << seed;
    EXPECT_NEAR(r.expected_cost, brute, 1e-9) << "seed " << seed;
    EXPECT_TRUE(SelectionFeasible(p, r.chosen)) << "seed " << seed;
  }
}

// ---------- Old vs new engine ----------

TEST(SolverEngineTest, AgreesWithLegacyEngineOnFig6Instances) {
  // Objective equality, not set equality: the fig6 instances have
  // plateaus of equal-cost optima (candidates that fit the budget without
  // changing any query's best cost), and the two engines tie-break
  // plateaus differently. Bit-identity is guaranteed per engine across
  // thread counts, which BitIdenticalAcrossThreadCounts covers.
  const SolverEngine engine;
  for (size_t n : {100ul, 200ul, 400ul}) {
    const SelectionProblem p = Fig6Synthetic(n, 13, n);
    const SelectionResult legacy = SolveSelectionExact(p);
    const SelectionResult r = engine.Solve(p);
    ASSERT_TRUE(legacy.proved_optimal) << n;
    ASSERT_TRUE(r.proved_optimal) << n;
    // Tolerance covers the engine's relative optimality gap.
    EXPECT_NEAR(r.expected_cost, legacy.expected_cost,
                2.0 * engine.options().relative_gap *
                    (1.0 + legacy.expected_cost))
        << n;
  }
}

TEST(SolverEngineTest, AgreesWithLegacyEngineOnRandomInstances) {
  const SolverEngine engine;
  for (uint64_t seed = 40; seed < 52; ++seed) {
    const SelectionProblem p =
        RandomInstance(seed, 16, 6, 20 + seed, seed % 2 == 1);
    const SelectionResult legacy = SolveSelectionExact(p);
    const SelectionResult r = engine.Solve(p);
    EXPECT_NEAR(r.expected_cost, legacy.expected_cost, 1e-9) << seed;
  }
}

// ---------- Determinism across thread counts ----------

TEST(SolverEngineTest, BitIdenticalAcrossThreadCounts) {
  ThreadPool pool1(1);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  for (size_t n : {200ul, 400ul}) {
    const SelectionProblem p = Fig6Synthetic(n, 13, n + 3);

    SolverOptions inline_opt;
    inline_opt.parallel = false;
    const SelectionResult reference = SolverEngine(inline_opt).Solve(p);

    for (ThreadPool* pool : {&pool1, &pool2, &pool8}) {
      SolverOptions opt;
      opt.pool = pool;
      const SelectionResult r = SolverEngine(opt).Solve(p);
      // Bit-identical: same chosen set, same doubles, same node count.
      EXPECT_EQ(r.chosen, reference.chosen) << n;
      EXPECT_EQ(r.expected_cost, reference.expected_cost) << n;
      EXPECT_EQ(r.used_bytes, reference.used_bytes) << n;
      EXPECT_EQ(r.nodes_explored, reference.nodes_explored) << n;
      EXPECT_EQ(r.best_for_query, reference.best_for_query) << n;
    }
  }
}

TEST(SolverEngineTest, NodeCappedSolvesStayDeterministic) {
  // A capped search returns an incumbent; the cap is enforced at wave
  // granularity, so the incumbent must still be thread-count invariant.
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  // Seed 100 at 100 candidates needs ~50k nodes to prove optimality, so a
  // 2k cap suspends the search mid-plateau.
  const SelectionProblem p = Fig6Synthetic(100, 13, 100);

  SolverOptions inline_opt;
  inline_opt.parallel = false;
  inline_opt.max_nodes = 2000;
  inline_opt.nodes_per_task = 256;
  const SelectionResult reference = SolverEngine(inline_opt).Solve(p);
  EXPECT_FALSE(reference.proved_optimal);

  for (ThreadPool* pool : {&pool2, &pool8}) {
    SolverOptions opt;
    opt.pool = pool;
    opt.max_nodes = 2000;
    opt.nodes_per_task = 256;
    const SelectionResult r = SolverEngine(opt).Solve(p);
    EXPECT_EQ(r.chosen, reference.chosen);
    EXPECT_EQ(r.expected_cost, reference.expected_cost);
    EXPECT_EQ(r.nodes_explored, reference.nodes_explored);
    EXPECT_FALSE(r.proved_optimal);
  }
}

TEST(SolverEngineTest, WarmStartedSolvesStayDeterministic) {
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const SelectionProblem p = Fig6Synthetic(300, 13, 7);
  const SelectionResult cold = SolverEngine().Solve(p);

  // Use the cold solution of a tighter budget as the warm hint.
  SelectionProblem tight = p;
  tight.budget_bytes = p.budget_bytes / 2;
  const SelectionResult tight_result = SolverEngine().Solve(tight);

  SolverOptions inline_opt;
  inline_opt.parallel = false;
  SolverStats ref_stats;
  const SelectionResult reference =
      SolverEngine(inline_opt).Solve(p, &ref_stats, &tight_result.chosen);
  EXPECT_EQ(ref_stats.warm_solves, 1u);
  // The optimum value never depends on the warm hint (modulo the
  // optimality gap); the chosen *set* may differ between warm and cold on
  // equal-cost plateaus.
  EXPECT_NEAR(reference.expected_cost, cold.expected_cost,
              2.0 * SolverOptions{}.relative_gap *
                  (1.0 + cold.expected_cost));

  for (ThreadPool* pool : {&pool2, &pool8}) {
    SolverOptions opt;
    opt.pool = pool;
    const SelectionResult r =
        SolverEngine(opt).Solve(p, nullptr, &tight_result.chosen);
    EXPECT_EQ(r.chosen, reference.chosen);
    EXPECT_EQ(r.expected_cost, reference.expected_cost);
    EXPECT_EQ(r.nodes_explored, reference.nodes_explored);
  }
}

// ---------- Warm-start semantics ----------

TEST(SolverEngineTest, WarmHintNeverChangesProvenOptimum) {
  const SolverEngine engine;
  for (uint64_t seed = 60; seed < 66; ++seed) {
    const SelectionProblem p = RandomInstance(seed, 14, 5, 30, false);
    const SelectionResult cold = engine.Solve(p);
    // Warm with garbage indices too: repair must skip them.
    std::vector<int> hint = cold.chosen;
    hint.push_back(9999);
    hint.push_back(-3);
    SolverStats stats;
    const SelectionResult warm = engine.Solve(p, &stats, &hint);
    EXPECT_TRUE(warm.proved_optimal);
    EXPECT_NEAR(warm.expected_cost, cold.expected_cost,
                2.0 * engine.options().relative_gap *
                    (1.0 + cold.expected_cost))
        << seed;
    EXPECT_EQ(stats.warm_solves, 1u);
  }
}

TEST(SolverEngineTest, StatsAccumulateAcrossSolves) {
  const SolverEngine engine;
  SolverStats stats;
  const SelectionProblem p = Fig6Synthetic(150, 13, 5);
  engine.Solve(p, &stats);
  const uint64_t nodes_once = stats.nodes_expanded;
  engine.Solve(p, &stats);
  EXPECT_EQ(stats.solves, 2u);
  EXPECT_EQ(stats.nodes_expanded, nodes_once * 2);
  EXPECT_TRUE(stats.proved_optimal);
}

// ---------- SSB-backed fixtures: re-pricing + session mapping ----------

class SolverSsbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.003;
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 2048;
    sopt.disk.page_size_bytes = 1024;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    model_ = new CorrelationCostModel(registry_);
    workload_ = new Workload(ssb::MakeWorkload());
    CandidateGeneratorOptions gopt;
    gopt.grouping.alphas = {0.0, 0.5};
    gopt.grouping.restarts = 1;
    generator_ = new MvCandidateGenerator(catalog_, registry_, model_, gopt);
    candidates_ = new std::vector<MvSpec>(generator_->Generate(*workload_).mvs);
  }
  static void TearDownTestSuite() {
    delete candidates_;
    delete generator_;
    delete workload_;
    delete model_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static CorrelationCostModel* model_;
  static Workload* workload_;
  static MvCandidateGenerator* generator_;
  static std::vector<MvSpec>* candidates_;
};

Catalog* SolverSsbTest::catalog_ = nullptr;
Universe* SolverSsbTest::universe_ = nullptr;
UniverseStats* SolverSsbTest::stats_ = nullptr;
StatsRegistry* SolverSsbTest::registry_ = nullptr;
CorrelationCostModel* SolverSsbTest::model_ = nullptr;
Workload* SolverSsbTest::workload_ = nullptr;
MvCandidateGenerator* SolverSsbTest::generator_ = nullptr;
std::vector<MvSpec>* SolverSsbTest::candidates_ = nullptr;

TEST_F(SolverSsbTest, AppendMatchesFullRebuild) {
  const uint64_t budget = 8ull << 20;
  const size_t half = candidates_->size() / 2;
  ASSERT_GT(half, 0u);

  std::vector<MvSpec> first(candidates_->begin(),
                            candidates_->begin() +
                                static_cast<ptrdiff_t>(half));
  std::vector<MvSpec> second(candidates_->begin() +
                                 static_cast<ptrdiff_t>(half),
                             candidates_->end());

  const BuiltProblem full = BuildSelectionProblem(
      *workload_, *candidates_, *model_, *registry_, budget);
  BuiltProblem grown = BuildSelectionProblem(*workload_, std::move(first),
                                             *model_, *registry_, budget);
  const size_t appended = AppendSelectionCandidates(
      &grown, std::move(second), *workload_, *model_, *registry_);

  EXPECT_EQ(appended, candidates_->size() - half);
  EXPECT_EQ(grown.specs.size(), full.specs.size());
  // The memoized model prices identical (query, spec) pairs identically,
  // so the incrementally grown problem must be bit-identical.
  EXPECT_EQ(grown.problem.sizes, full.problem.sizes);
  EXPECT_EQ(grown.problem.costs, full.problem.costs);
  EXPECT_EQ(grown.problem.forced, full.problem.forced);
  EXPECT_EQ(grown.problem.sos1_groups, full.problem.sos1_groups);
  EXPECT_EQ(grown.problem.query_weights, full.problem.query_weights);
  for (size_t m = 0; m < full.specs.size(); ++m) {
    EXPECT_EQ(MvSpecSignature(grown.specs[m]), MvSpecSignature(full.specs[m]));
  }
}

TEST_F(SolverSsbTest, AgreesWithLegacyEngineOnSsbProblems) {
  // The fig5 problem set: real SSB candidate pools across budgets. Both
  // engines prove (gap-)optimality and must agree on the objective.
  const SolverEngine engine;
  for (uint64_t budget : {2ull << 20, 8ull << 20, 32ull << 20}) {
    const BuiltProblem built = BuildSelectionProblem(
        *workload_, *candidates_, *model_, *registry_, budget);
    const SelectionResult legacy = SolveSelectionExact(built.problem);
    const SelectionResult r = engine.Solve(built.problem);
    ASSERT_TRUE(legacy.proved_optimal) << budget;
    ASSERT_TRUE(r.proved_optimal) << budget;
    EXPECT_NEAR(r.expected_cost, legacy.expected_cost,
                2.0 * engine.options().relative_gap *
                    (1.0 + legacy.expected_cost))
        << budget;
  }
}

TEST_F(SolverSsbTest, WarmStartSessionMapsAcrossRebuiltProblems) {
  const SolverEngine engine;
  WarmStartSession session;
  EXPECT_FALSE(session.has_solution());

  const BuiltProblem tight = BuildSelectionProblem(
      *workload_, *candidates_, *model_, *registry_, 4ull << 20);
  const SelectionResult tight_result = engine.Solve(tight.problem);
  session.Record(tight, tight_result);
  EXPECT_TRUE(session.has_solution());

  // A rebuilt problem at another budget: the session maps by signature.
  const BuiltProblem loose = BuildSelectionProblem(
      *workload_, *candidates_, *model_, *registry_, 16ull << 20);
  const std::vector<int> warm = session.WarmChosen(loose);
  EXPECT_GE(warm.size(), tight_result.chosen.size() - 1);  // minus base

  SolverStats warm_stats;
  const SelectionResult warm_result =
      engine.Solve(loose.problem, &warm_stats, &warm);
  SolverStats cold_stats;
  const SelectionResult cold_result =
      engine.Solve(loose.problem, &cold_stats);
  ASSERT_TRUE(warm_result.proved_optimal);
  ASSERT_TRUE(cold_result.proved_optimal);
  EXPECT_NEAR(warm_result.expected_cost, cold_result.expected_cost,
              2.0 * engine.options().relative_gap *
                  (1.0 + cold_result.expected_cost));
  EXPECT_EQ(warm_stats.warm_solves, 1u);
}

}  // namespace
}  // namespace coradd
