// Cross-designer integration tests: the paper's qualitative claims checked
// end-to-end on small SSB and APB instances — answer consistency across all
// designers, CORADD vs Naive vs Commercial orderings, and the correlation
// advantage showing up in *executed* (not just modelled) runtimes.
#include <gtest/gtest.h>

#include <map>

#include "apb/apb.h"
#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.005;
    catalog_ = ssb::MakeCatalog(options).release();
    workload_ = new Workload(ssb::MakeWorkload());
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    sopt.disk.page_size_bytes = 1024;
    context_ = new DesignContext(catalog_, *workload_, sopt);
    evaluator_ = new DesignEvaluator(context_, /*cache_capacity=*/40);
    coradd_ = new CoraddDesigner(context_, FastOptions());
    coradd_designs_ = new std::map<uint64_t, DatabaseDesign>();
  }
  static void TearDownTestSuite() {
    delete coradd_designs_;
    delete coradd_;
    delete evaluator_;
    delete context_;
    delete workload_;
    delete catalog_;
  }

  static CoraddOptions FastOptions() {
    CoraddOptions options;
    options.candidates.grouping.alphas = {0.0, 0.25, 0.5};
    options.candidates.grouping.restarts = 1;
    options.feedback.max_iterations = 1;
    return options;
  }

  /// CORADD design for the shared workload at `budget`, computed once per
  /// suite. The designer is deterministic and its cost model memoizes
  /// (query, candidate) estimates, so sharing one instance across the
  /// budget grid cuts suite runtime without changing any result.
  static const DatabaseDesign& CoraddDesignFor(uint64_t budget) {
    auto it = coradd_designs_->find(budget);
    if (it == coradd_designs_->end()) {
      it = coradd_designs_->emplace(budget, coradd_->Design(*workload_, budget))
               .first;
    }
    return it->second;
  }

  static Catalog* catalog_;
  static Workload* workload_;
  static DesignContext* context_;
  static DesignEvaluator* evaluator_;
  static CoraddDesigner* coradd_;
  static std::map<uint64_t, DatabaseDesign>* coradd_designs_;
};

Catalog* IntegrationTest::catalog_ = nullptr;
Workload* IntegrationTest::workload_ = nullptr;
DesignContext* IntegrationTest::context_ = nullptr;
DesignEvaluator* IntegrationTest::evaluator_ = nullptr;
CoraddDesigner* IntegrationTest::coradd_ = nullptr;
std::map<uint64_t, DatabaseDesign>* IntegrationTest::coradd_designs_ = nullptr;

TEST_F(IntegrationTest, AllDesignersReturnIdenticalAnswers) {
  const uint64_t budget = 24ull << 20;
  NaiveDesigner naive(context_);
  CommercialDesigner commercial(context_);

  const DatabaseDesign& d1 = CoraddDesignFor(budget);
  const DatabaseDesign d2 = naive.Design(*workload_, budget);
  const DatabaseDesign d3 = commercial.Design(*workload_, budget);

  const WorkloadRunResult r1 = evaluator_->Run(d1, *workload_, coradd_->model());
  const WorkloadRunResult r2 = evaluator_->Run(d2, *workload_, naive.model());
  const WorkloadRunResult r3 =
      evaluator_->Run(d3, *workload_, commercial.model());

  for (size_t q = 0; q < workload_->queries.size(); ++q) {
    const double ref = r1.per_query[q].aggregate;
    EXPECT_NEAR(r2.per_query[q].aggregate, ref, std::abs(ref) * 1e-9 + 1e-6)
        << workload_->queries[q].id;
    EXPECT_NEAR(r3.per_query[q].aggregate, ref, std::abs(ref) * 1e-9 + 1e-6)
        << workload_->queries[q].id;
    EXPECT_EQ(r1.per_query[q].rows_output, r2.per_query[q].rows_output);
    EXPECT_EQ(r1.per_query[q].rows_output, r3.per_query[q].rows_output);
  }
}

TEST_F(IntegrationTest, CoraddExpectedCostBeatsOrMatchesNaive) {
  // CORADD subsumes Naive's candidates (dedicated MVs + reclusters) under
  // the same cost model and optimizes exactly, so its *expected* cost can
  // never be worse.
  NaiveDesigner naive(context_);
  for (uint64_t budget : {4ull << 20, 16ull << 20, 48ull << 20}) {
    const double c = CoraddDesignFor(budget).expected_seconds;
    const double n = naive.Design(*workload_, budget).expected_seconds;
    EXPECT_LE(c, n * 1.05 + 1e-9) << budget;
  }
}

TEST_F(IntegrationTest, CoraddOutperformsCommercialOnRealRuntime) {
  // The headline claim (Figs 9/11): at a healthy budget the executed
  // runtime of CORADD's design beats the oblivious designer's.
  const uint64_t budget = 48ull << 20;
  CommercialDesigner commercial(context_);
  const DatabaseDesign& d1 = CoraddDesignFor(budget);
  const DatabaseDesign d3 = commercial.Design(*workload_, budget);
  const double t1 =
      evaluator_->Run(d1, *workload_, coradd_->model()).total_seconds;
  const double t3 =
      evaluator_->Run(d3, *workload_, commercial.model()).total_seconds;
  EXPECT_LT(t1, t3);
}

TEST_F(IntegrationTest, RealRuntimeImprovesWithBudget) {
  double prev = -1.0;
  for (uint64_t budget : {0ull, 16ull << 20, 64ull << 20}) {
    const DatabaseDesign& d = CoraddDesignFor(budget);
    const double t =
        evaluator_->Run(d, *workload_, coradd_->model()).total_seconds;
    if (prev >= 0.0) {
      EXPECT_LE(t, prev * 1.3) << budget;  // allow noise
    }
    prev = t;
  }
}

TEST_F(IntegrationTest, ApbPipelineEndToEnd) {
  apb::ApbOptions options;
  options.scale = 0.0005;
  auto apb_catalog = apb::MakeCatalog(options);
  const Workload apb_workload = apb::MakeWorkload(options);
  StatsOptions sopt;
  sopt.sample_rows = 2048;
  sopt.disk.page_size_bytes = 1024;
  DesignContext apb_context(apb_catalog.get(), apb_workload, sopt);

  CoraddOptions copt = FastOptions();
  CoraddDesigner designer(&apb_context, copt);
  const DatabaseDesign d = designer.Design(apb_workload, 16ull << 20);
  EXPECT_LE(d.object_bytes, 16ull << 20);

  // Both fact tables must be served.
  bool actuals_served = false, budget_served = false;
  for (size_t q = 0; q < apb_workload.queries.size(); ++q) {
    const auto& obj = d.objects[static_cast<size_t>(d.object_for_query[q])];
    if (apb_workload.queries[q].fact_table == "actuals") {
      actuals_served |= obj.spec.fact_table == "actuals";
    } else {
      budget_served |= obj.spec.fact_table == "budget";
    }
  }
  EXPECT_TRUE(actuals_served);
  EXPECT_TRUE(budget_served);

  DesignEvaluator apb_eval(&apb_context);
  const WorkloadRunResult run =
      apb_eval.Run(d, apb_workload, designer.model());
  EXPECT_GT(run.total_seconds, 0.0);
  EXPECT_EQ(run.per_query.size(), 31u);
}

TEST_F(IntegrationTest, FrequencyWeightsInfluenceDesign) {
  // Doubling a query's frequency must not worsen its chosen runtime.
  const uint64_t budget = 6ull << 20;
  const DatabaseDesign& base = CoraddDesignFor(budget);

  Workload weighted = *workload_;
  weighted.queries[5].frequency = 50.0;  // Q2.3
  const DatabaseDesign heavy = coradd_->Design(weighted, budget);

  const double base_q5 =
      evaluator_->Run(base, *workload_, coradd_->model()).per_query[5]
          .real_seconds;
  const double heavy_q5 =
      evaluator_->Run(heavy, weighted, coradd_->model()).per_query[5]
          .real_seconds;
  EXPECT_LE(heavy_q5, base_q5 * 1.2 + 1e-6);
}

}  // namespace
}  // namespace coradd
