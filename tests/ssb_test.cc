// Tests for the SSB generator (src/ssb): table sizes, dimension hierarchy
// consistency, orderdate/commitdate correlation, FK integrity, determinism,
// and the 13- and 52-query workloads.
#include <gtest/gtest.h>

#include <set>

#include "catalog/universe.h"
#include "ssb/ssb.h"

namespace coradd {
namespace ssb {
namespace {

class SsbGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbOptions options;
    options.scale_factor = 0.002;
    catalog_ = MakeCatalog(options).release();
  }
  static void TearDownTestSuite() { delete catalog_; }
  static Catalog* catalog_;
};

Catalog* SsbGeneratorTest::catalog_ = nullptr;

TEST_F(SsbGeneratorTest, TablesExistWithExpectedSizes) {
  SsbOptions options;
  options.scale_factor = 0.002;
  EXPECT_EQ(catalog_->GetTable("lineorder")->NumRows(),
            options.LineorderRows());
  EXPECT_EQ(catalog_->GetTable("customer")->NumRows(), options.CustomerRows());
  EXPECT_EQ(catalog_->GetTable("supplier")->NumRows(), options.SupplierRows());
  EXPECT_EQ(catalog_->GetTable("part")->NumRows(), options.PartRows());
  EXPECT_EQ(catalog_->GetTable("date")->NumRows(), 2557u);  // 1992-1998
}

TEST_F(SsbGeneratorTest, DateHierarchyIsConsistent) {
  const Table* date = catalog_->GetTable("date");
  const int key = date->schema().ColumnIndex("d_datekey");
  const int year = date->schema().ColumnIndex("d_year");
  const int ymn = date->schema().ColumnIndex("d_yearmonthnum");
  const int month = date->schema().ColumnIndex("d_monthnuminyear");
  const int week = date->schema().ColumnIndex("d_weeknuminyear");
  for (RowId r = 0; r < date->NumRows(); ++r) {
    const int64_t k = date->Value(r, key);
    EXPECT_EQ(date->Value(r, year), k / 10000);
    EXPECT_EQ(date->Value(r, ymn), k / 100);
    EXPECT_EQ(date->Value(r, month), (k / 100) % 100);
    EXPECT_GE(date->Value(r, week), 1);
    EXPECT_LE(date->Value(r, week), 53);
  }
}

TEST_F(SsbGeneratorTest, GeographyHierarchyIsFunctional) {
  for (const char* table_name : {"customer", "supplier"}) {
    const Table* t = catalog_->GetTable(table_name);
    const std::string prefix = table_name[0] == 'c' ? "c_" : "s_";
    const int city = t->schema().ColumnIndex(prefix + "city");
    const int nation = t->schema().ColumnIndex(prefix + "nation");
    const int region = t->schema().ColumnIndex(prefix + "region");
    for (RowId r = 0; r < t->NumRows(); ++r) {
      EXPECT_EQ(t->Value(r, nation), t->Value(r, city) / kCitiesPerNation);
      EXPECT_EQ(t->Value(r, region),
                RegionOfNation(static_cast<int>(t->Value(r, nation))));
    }
  }
}

TEST_F(SsbGeneratorTest, PartHierarchyIsFunctional) {
  const Table* part = catalog_->GetTable("part");
  const int mfgr = part->schema().ColumnIndex("p_mfgr");
  const int cat = part->schema().ColumnIndex("p_category");
  const int brand = part->schema().ColumnIndex("p_brand1");
  for (RowId r = 0; r < part->NumRows(); ++r) {
    EXPECT_EQ(part->Value(r, cat), part->Value(r, brand) / 40);
    EXPECT_EQ(part->Value(r, mfgr), part->Value(r, cat) / 5);
  }
}

TEST_F(SsbGeneratorTest, CommitDateFollowsOrderDate) {
  const Table* lo = catalog_->GetTable("lineorder");
  const int od = lo->schema().ColumnIndex("lo_orderdate");
  const int cd = lo->schema().ColumnIndex("lo_commitdate");
  for (RowId r = 0; r < lo->NumRows(); ++r) {
    EXPECT_GE(lo->Value(r, cd), lo->Value(r, od));
  }
}

TEST_F(SsbGeneratorTest, RevenueDerivesFromPriceAndDiscount) {
  const Table* lo = catalog_->GetTable("lineorder");
  const int price = lo->schema().ColumnIndex("lo_extendedprice");
  const int disc = lo->schema().ColumnIndex("lo_discount");
  const int rev = lo->schema().ColumnIndex("lo_revenue");
  for (RowId r = 0; r < std::min<size_t>(lo->NumRows(), 1000); ++r) {
    EXPECT_EQ(lo->Value(r, rev),
              lo->Value(r, price) * (100 - lo->Value(r, disc)) / 100);
  }
}

TEST_F(SsbGeneratorTest, ForeignKeysResolve) {
  // Universe construction CHECKs every FK; surviving it proves integrity.
  const FactTableInfo* info = catalog_->GetFactInfo("lineorder");
  ASSERT_NE(info, nullptr);
  Universe u(*catalog_, *info);
  EXPECT_EQ(u.NumRows(), catalog_->GetTable("lineorder")->NumRows());
  EXPECT_GT(u.NumColumns(),
            catalog_->GetTable("lineorder")->schema().NumColumns());
}

TEST_F(SsbGeneratorTest, DeterministicAcrossRuns) {
  SsbOptions options;
  options.scale_factor = 0.002;
  auto again = MakeCatalog(options);
  const Table* a = catalog_->GetTable("lineorder");
  const Table* b = again->GetTable("lineorder");
  ASSERT_EQ(a->NumRows(), b->NumRows());
  for (RowId r = 0; r < 100; ++r) {
    for (size_t c = 0; c < a->schema().NumColumns(); ++c) {
      ASSERT_EQ(a->Value(r, c), b->Value(r, c));
    }
  }
}

// ---------- Encodings ----------

TEST(SsbEncodingTest, CityCodes) {
  EXPECT_EQ(CityCode("UNITED KI1"), 23 * 10 + 1);
  EXPECT_EQ(CityCode("UNITED ST0"), 24 * 10 + 0);
  EXPECT_EQ(CityCode("ALGERIA  9"), 9);
}

TEST(SsbEncodingTest, NationAndRegionCodes) {
  EXPECT_EQ(NationCode("UNITED STATES"), 24);
  EXPECT_EQ(NationCode("ALGERIA"), 0);
  EXPECT_EQ(RegionCode("AFRICA"), 0);
  EXPECT_EQ(RegionCode("MIDDLE EAST"), 4);
  EXPECT_EQ(RegionOfNation(static_cast<int>(NationCode("UNITED STATES"))),
            static_cast<int>(RegionCode("AMERICA")));
}

TEST(SsbEncodingTest, PartCodes) {
  EXPECT_EQ(MfgrCode("MFGR#1"), 0);
  EXPECT_EQ(MfgrCode("MFGR#5"), 4);
  EXPECT_EQ(CategoryCode("MFGR#12"), 1);
  EXPECT_EQ(CategoryCode("MFGR#55"), 24);
  EXPECT_EQ(BrandCode("MFGR#1101"), 0);
  EXPECT_EQ(BrandCode("MFGR#2221"), ((1 * 5) + 1) * 40 + 20);
}

TEST(SsbEncodingTest, YearMonth) {
  EXPECT_EQ(YearMonthNum(1994, 1), 199401);
  EXPECT_EQ(YearMonthCode(1992, 1), 0);
  EXPECT_EQ(YearMonthCode(1997, 12), 71);
}

// ---------- Workloads ----------

TEST(SsbWorkloadTest, ThirteenStandardQueries) {
  const Workload w = MakeWorkload();
  EXPECT_EQ(w.queries.size(), 13u);
  std::set<std::string> ids;
  for (const auto& q : w.queries) {
    ids.insert(q.id);
    EXPECT_EQ(q.fact_table, "lineorder");
    EXPECT_FALSE(q.predicates.empty()) << q.id;
    EXPECT_FALSE(q.aggregates.empty()) << q.id;
  }
  EXPECT_EQ(ids.size(), 13u);
  EXPECT_TRUE(ids.count("Q1.1"));
  EXPECT_TRUE(ids.count("Q4.3"));
}

TEST(SsbWorkloadTest, AugmentedWorkloadHas52UniqueQueries) {
  const Workload w = MakeAugmentedWorkload();
  EXPECT_EQ(w.queries.size(), 52u);
  std::set<std::string> ids;
  for (const auto& q : w.queries) ids.insert(q.id);
  EXPECT_EQ(ids.size(), 52u);
}

TEST(SsbWorkloadTest, AllQueryColumnsExistInUniverse) {
  SsbOptions options;
  options.scale_factor = 0.002;
  auto catalog = MakeCatalog(options);
  Universe u(*catalog, *catalog->GetFactInfo("lineorder"));
  for (const auto& q : MakeAugmentedWorkload().queries) {
    for (const auto& col : q.AllColumns()) {
      EXPECT_GE(u.ColumnIndex(col), 0) << q.id << " references " << col;
    }
  }
}

TEST(SsbWorkloadTest, Q1PredicatesMatchPaper) {
  const Workload w = MakeWorkload();
  const Query& q11 = w.queries[0];
  ASSERT_EQ(q11.predicates.size(), 3u);
  EXPECT_EQ(q11.predicates[0].column, "d_year");
  EXPECT_EQ(q11.predicates[0].value, 1993);
  EXPECT_EQ(q11.predicates[1].column, "lo_discount");
  EXPECT_EQ(q11.predicates[1].lo, 1);
  EXPECT_EQ(q11.predicates[1].hi, 3);
}

TEST(SsbWorkloadTest, AugmentedVariantsDifferFromOriginals) {
  const Workload w = MakeAugmentedWorkload();
  // Q1.1v1 must not equal Q1.1's predicate set.
  const Query* orig = nullptr;
  const Query* variant = nullptr;
  for (const auto& q : w.queries) {
    if (q.id == "Q1.1") orig = &q;
    if (q.id == "Q1.1v1") variant = &q;
  }
  ASSERT_NE(orig, nullptr);
  ASSERT_NE(variant, nullptr);
  EXPECT_NE(orig->predicates[0].value, variant->predicates[0].value);
}

}  // namespace
}  // namespace ssb
}  // namespace coradd
