// Tests for src/storage: page-layout arithmetic, B+Tree shape, fragment
// coalescing, buffer pool, and the seek/scan disk model.
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/clustered_table.h"
#include "storage/disk_model.h"
#include "storage/layout.h"
#include "storage/secondary_index.h"

namespace coradd {
namespace {

ColumnDef Int(const std::string& name, uint32_t bytes = 4) {
  ColumnDef c;
  c.name = name;
  c.byte_size = bytes;
  return c;
}

// ---------- HeapLayout ----------

TEST(HeapLayoutTest, RowsPerPageAndPages) {
  HeapLayout l{1000, 100, 8192};
  EXPECT_EQ(l.RowsPerPage(), 81u);
  EXPECT_EQ(l.NumPages(), 13u);  // ceil(1000/81)
  EXPECT_EQ(l.PageOfRow(0), 0u);
  EXPECT_EQ(l.PageOfRow(80), 0u);
  EXPECT_EQ(l.PageOfRow(81), 1u);
  EXPECT_EQ(l.SizeBytes(), 13u * 8192);
}

TEST(HeapLayoutTest, WideRowStillFitsOnePerPage) {
  HeapLayout l{10, 20000, 8192};
  EXPECT_EQ(l.RowsPerPage(), 1u);
  EXPECT_EQ(l.NumPages(), 10u);
}

TEST(HeapLayoutTest, EmptyTable) {
  HeapLayout l{0, 100, 8192};
  EXPECT_EQ(l.NumPages(), 0u);
}

// ---------- BTreeShape ----------

TEST(BTreeShapeTest, SmallTreeIsOneLevel) {
  const BTreeShape s = ComputeBTreeShape(10, 12, 4);
  EXPECT_EQ(s.leaf_pages, 1u);
  EXPECT_EQ(s.internal_pages, 0u);
  EXPECT_EQ(s.height, 1u);
}

TEST(BTreeShapeTest, HeightGrowsLogarithmically) {
  const BTreeShape small = ComputeBTreeShape(10000, 12, 4);
  const BTreeShape big = ComputeBTreeShape(100000000, 12, 4);
  EXPECT_GT(big.height, small.height);
  EXPECT_LE(big.height, 5u);  // high fanout keeps trees shallow
}

TEST(BTreeShapeTest, InternalPagesMuchSmallerThanLeaves) {
  const BTreeShape s = ComputeBTreeShape(10000000, 12, 4);
  EXPECT_GT(s.leaf_pages, 0u);
  EXPECT_LT(s.internal_pages, s.leaf_pages / 50);
}

TEST(BTreeShapeTest, ZeroEntries) {
  const BTreeShape s = ComputeBTreeShape(0, 12, 4);
  EXPECT_EQ(s.leaf_pages, 1u);
  EXPECT_EQ(s.height, 1u);
}

// ---------- CoalescePages ----------

TEST(CoalescePagesTest, MergesAdjacent) {
  const auto runs = CoalescePages({1, 2, 3, 10, 11, 30}, 0);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].first_page, 1u);
  EXPECT_EQ(runs[0].last_page, 3u);
  EXPECT_EQ(runs[1].NumPages(), 2u);
  EXPECT_EQ(runs[2].first_page, 30u);
}

TEST(CoalescePagesTest, GapToleranceMerges) {
  const auto runs = CoalescePages({1, 4, 7}, 2);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].first_page, 1u);
  EXPECT_EQ(runs[0].last_page, 7u);
}

TEST(CoalescePagesTest, DuplicatesIgnored) {
  const auto runs = CoalescePages({5, 5, 5, 6}, 0);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].NumPages(), 2u);
}

TEST(CoalescePagesTest, Empty) {
  EXPECT_TRUE(CoalescePages({}, 4).empty());
}

// ---------- DiskModel ----------

TEST(DiskModelTest, SeekAndReadAccounting) {
  DiskParams params;
  DiskModel d(params);
  d.Seek();
  d.SequentialRead(100);
  EXPECT_EQ(d.seeks(), 1u);
  EXPECT_EQ(d.pages_read(), 100u);
  EXPECT_NEAR(d.elapsed_seconds(),
              params.seek_seconds + 100 * params.PageReadSeconds(), 1e-12);
}

TEST(DiskModelTest, WriteIncludesSeek) {
  DiskModel d;
  d.WritePage();
  EXPECT_EQ(d.pages_written(), 1u);
  EXPECT_EQ(d.seeks(), 1u);
}

TEST(DiskModelTest, SeeksDominateScatteredAccess) {
  DiskParams params;
  DiskModel scattered(params), sequential(params);
  for (int i = 0; i < 1000; ++i) {
    scattered.Seek();
    scattered.SequentialRead(1);
  }
  sequential.Seek();
  sequential.SequentialRead(1000);
  EXPECT_GT(scattered.elapsed_seconds(), 10 * sequential.elapsed_seconds());
}

TEST(DiskModelTest, Reset) {
  DiskModel d;
  d.Seek();
  d.Reset();
  EXPECT_EQ(d.seeks(), 0u);
  EXPECT_EQ(d.elapsed_seconds(), 0.0);
}

// ---------- BufferPool ----------

TEST(BufferPoolTest, HitsAndMisses) {
  DiskModel disk;
  BufferPool pool(4, &disk);
  EXPECT_FALSE(pool.Read({1, 0}));
  EXPECT_TRUE(pool.Read({1, 0}));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, LruEviction) {
  DiskModel disk;
  BufferPool pool(2, &disk);
  pool.Read({1, 0});
  pool.Read({1, 1});
  pool.Read({1, 2});           // evicts page 0
  EXPECT_FALSE(pool.Read({1, 0}));  // miss again
  EXPECT_TRUE(pool.Read({1, 2}));
}

TEST(BufferPoolTest, TouchRefreshesLruOrder) {
  DiskModel disk;
  BufferPool pool(2, &disk);
  pool.Read({1, 0});
  pool.Read({1, 1});
  pool.Read({1, 0});  // page 0 now MRU
  pool.Read({1, 2});  // evicts page 1
  EXPECT_TRUE(pool.Read({1, 0}));
  EXPECT_FALSE(pool.Read({1, 1}));
}

TEST(BufferPoolTest, DirtyEvictionWrites) {
  DiskModel disk;
  BufferPool pool(2, &disk);
  pool.Write({1, 0});
  pool.Write({1, 1});
  const uint64_t writes_before = disk.pages_written();
  pool.Read({1, 2});  // evicts dirty page 0
  EXPECT_EQ(disk.pages_written(), writes_before + 1);
  EXPECT_EQ(pool.dirty_evictions(), 1u);
}

TEST(BufferPoolTest, CleanEvictionDoesNotWrite) {
  DiskModel disk;
  BufferPool pool(2, &disk);
  pool.Read({1, 0});
  pool.Read({1, 1});
  const uint64_t writes_before = disk.pages_written();
  pool.Read({1, 2});
  EXPECT_EQ(disk.pages_written(), writes_before);
}

TEST(BufferPoolTest, FlushAllWritesDirtyOnce) {
  DiskModel disk;
  BufferPool pool(8, &disk);
  pool.Write({1, 0});
  pool.Write({1, 1});
  pool.Read({1, 2});
  const uint64_t writes_before = disk.pages_written();
  pool.FlushAll();
  EXPECT_EQ(disk.pages_written(), writes_before + 2);
  pool.FlushAll();  // already clean
  EXPECT_EQ(disk.pages_written(), writes_before + 2);
}

TEST(BufferPoolTest, ReadAfterWriteIsHitAndStaysDirty) {
  DiskModel disk;
  BufferPool pool(4, &disk);
  pool.Write({1, 0});
  EXPECT_TRUE(pool.Read({1, 0}));
  const uint64_t writes_before = disk.pages_written();
  pool.FlushAll();
  EXPECT_EQ(disk.pages_written(), writes_before + 1);
}

// ---------- ClusteredTable ----------

std::unique_ptr<Table> MakeKeyed(int n) {
  auto t = std::make_unique<Table>(Schema({Int("k1"), Int("k2"), Int("v")}), "t");
  // Insert in reverse so construction must sort.
  for (int i = n - 1; i >= 0; --i) t->AppendRow({i / 10, i % 10, i});
  return t;
}

TEST(ClusteredTableTest, SortsOnConstruction) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  for (RowId r = 1; r < 100; ++r) {
    const int64_t prev = ct.table().Value(r - 1, 0) * 100 + ct.table().Value(r - 1, 1);
    const int64_t cur = ct.table().Value(r, 0) * 100 + ct.table().Value(r, 1);
    EXPECT_LE(prev, cur);
  }
}

TEST(ClusteredTableTest, EqualRangeSingleColumn) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  const RowRange r = ct.EqualRange({3});
  EXPECT_EQ(r.Size(), 10u);
  for (RowId i = r.begin; i < r.end; ++i) {
    EXPECT_EQ(ct.table().Value(i, 0), 3);
  }
}

TEST(ClusteredTableTest, EqualRangeFullKey) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  const RowRange r = ct.EqualRange({4, 7});
  ASSERT_EQ(r.Size(), 1u);
  EXPECT_EQ(ct.table().Value(r.begin, 2), 47);
}

TEST(ClusteredTableTest, EqualRangeMissingKeyEmpty) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  EXPECT_TRUE(ct.EqualRange({42}).Empty());
}

TEST(ClusteredTableTest, ScanBatchIsZeroCopyWindow) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  ColumnBatch batch;
  ct.ScanBatch(RowRange{25, 75}, {2, 0}, &batch);
  EXPECT_EQ(batch.begin, 25u);
  ASSERT_EQ(batch.NumRows(), 50u);
  ASSERT_EQ(batch.cols.size(), 2u);
  // Pointers alias the heap's column storage directly.
  EXPECT_EQ(batch.cols[0], ct.ColumnSlice(2, 25));
  for (uint32_t i = 0; i < batch.NumRows(); ++i) {
    EXPECT_EQ(batch.cols[0][i], ct.table().Value(25 + i, 2));
    EXPECT_EQ(batch.cols[1][i], ct.table().Value(25 + i, 0));
  }
}

TEST(ClusteredTableTest, PrefixThenRange) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  const RowRange r = ct.PrefixThenRange({5}, 2, 6);
  EXPECT_EQ(r.Size(), 5u);  // k2 in {2..6} within k1 == 5
  for (RowId i = r.begin; i < r.end; ++i) {
    EXPECT_EQ(ct.table().Value(i, 0), 5);
    EXPECT_GE(ct.table().Value(i, 1), 2);
    EXPECT_LE(ct.table().Value(i, 1), 6);
  }
}

TEST(ClusteredTableTest, RangeOnFirstColumn) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  const RowRange r = ct.PrefixThenRange({}, 2, 4);
  EXPECT_EQ(r.Size(), 30u);
}

TEST(ClusteredTableTest, SizeIncludesInternalPages) {
  ClusteredTable ct(MakeKeyed(1000), {0});
  EXPECT_GE(ct.SizeBytes(), ct.layout().SizeBytes());
  EXPECT_GE(ct.BTreeHeight(), 1u);
}

// ---------- SecondaryBTreeIndex ----------

TEST(SecondaryIndexTest, LookupEqual) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  SecondaryBTreeIndex idx(&ct, 2);  // index on v (unique)
  const auto rids = idx.LookupEqual(55);
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(ct.table().Value(rids[0], 2), 55);
  EXPECT_TRUE(idx.LookupEqual(1000).empty());
}

TEST(SecondaryIndexTest, LookupRangeSortedRids) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  SecondaryBTreeIndex idx(&ct, 2);
  const auto rids = idx.LookupRange(10, 19);
  EXPECT_EQ(rids.size(), 10u);
  for (size_t i = 1; i < rids.size(); ++i) EXPECT_LT(rids[i - 1], rids[i]);
}

TEST(SecondaryIndexTest, LookupInDeduplicates) {
  ClusteredTable ct(MakeKeyed(100), {0, 1});
  SecondaryBTreeIndex idx(&ct, 0);  // k1 has 10 rows per value
  const auto rids = idx.LookupIn({3, 3, 4});
  EXPECT_EQ(rids.size(), 20u);
}

TEST(SecondaryIndexTest, DenseSizing) {
  ClusteredTable ct(MakeKeyed(1000), {0, 1});
  SecondaryBTreeIndex idx(&ct, 2);
  EXPECT_EQ(idx.NumDistinctKeys(), 1000u);
  // Dense: one 12-byte entry per row at 67% fill -> >= 2 pages.
  EXPECT_GE(idx.SizeBytes(), 2u * 8192);
}

TEST(SecondaryIndexTest, MatchesBruteForce) {
  ClusteredTable ct(MakeKeyed(500), {0, 1});
  SecondaryBTreeIndex idx(&ct, 1);  // k2: 50 rows per value
  for (int64_t v = 0; v < 10; ++v) {
    const auto rids = idx.LookupEqual(v);
    size_t expected = 0;
    for (RowId r = 0; r < 500; ++r) {
      if (ct.table().Value(r, 1) == v) ++expected;
    }
    EXPECT_EQ(rids.size(), expected) << "v=" << v;
  }
}

}  // namespace
}  // namespace coradd
