// Golden tests for the bench_compare machinery: committed BENCH_*.json
// pairs under tests/golden/bench_compare/ pin each verdict (regression /
// improvement / no-change / too-noisy), its exit code, and the key report
// phrases. The same pairs back the CLI-level ctest entries registered in
// CMakeLists.txt (bench_compare_self / bench_compare_regression).
#include <string>

#include "benchkit/compare.h"
#include "gtest/gtest.h"

namespace coradd {
namespace benchkit {
namespace {

std::string Golden(const std::string& name) {
  return std::string(CORADD_TESTDATA_DIR) + "/golden/bench_compare/" + name;
}

const CompareOptions kDefaults;

TEST(BenchCompareGolden, LoadsSchemaV2Document) {
  const Result<BenchDoc> doc = LoadBenchDoc(Golden("base_fig11.json"));
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  EXPECT_EQ((*doc).bench, "fig11_ssb");
  EXPECT_EQ((*doc).schema_version, 2);
  const std::vector<double>* wall = (*doc).Samples("wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_GE(wall->size(), 3u);
}

TEST(BenchCompareGolden, SelfCompareIsNoChange) {
  const auto report = CompareFiles(Golden("base_fig11.json"),
                                   Golden("base_fig11.json"), kDefaults);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ((*report).overall, Verdict::kNoChange);
  EXPECT_EQ(VerdictExitCode((*report).overall), 0);
  ASSERT_EQ((*report).metrics.size(), 1u);
  EXPECT_NEAR((*report).metrics[0].effect, 0.0, 1e-12);
  EXPECT_NE(RenderReport(*report).find("verdict: NO-CHANGE"),
            std::string::npos);
}

TEST(BenchCompareGolden, PlantedTwoXSlowdownIsRegression) {
  const auto report = CompareFiles(Golden("base_fig11.json"),
                                   Golden("regressed_fig11.json"), kDefaults);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ((*report).overall, Verdict::kRegression);
  EXPECT_EQ(VerdictExitCode((*report).overall), 12);
  ASSERT_EQ((*report).metrics.size(), 1u);
  EXPECT_NEAR((*report).metrics[0].effect, 1.0, 1e-9);  // +100%
  EXPECT_TRUE((*report).metrics[0].welch.significant);
  const std::string text = RenderReport(*report);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("+100.0%"), std::string::npos);
  EXPECT_NE(text.find("verdict: REGRESSION"), std::string::npos);
}

TEST(BenchCompareGolden, PlantedSpeedupIsImprovement) {
  const auto report = CompareFiles(Golden("base_fig11.json"),
                                   Golden("improved_fig11.json"), kDefaults);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ((*report).overall, Verdict::kImprovement);
  EXPECT_EQ(VerdictExitCode((*report).overall), 10);
  EXPECT_NEAR((*report).metrics[0].effect, -0.5, 1e-9);
  EXPECT_NE(RenderReport(*report).find("verdict: IMPROVEMENT"),
            std::string::npos);
}

TEST(BenchCompareGolden, HighVarianceShiftIsTooNoisy) {
  const auto report = CompareFiles(Golden("base_noisy.json"),
                                   Golden("run_noisy.json"), kDefaults);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ((*report).overall, Verdict::kTooNoisy);
  EXPECT_EQ(VerdictExitCode((*report).overall), 11);
  EXPECT_FALSE((*report).metrics[0].welch.significant);
  EXPECT_NE(
      RenderReport(*report).find("effect above threshold but not significant"),
      std::string::npos);
}

TEST(BenchCompareGolden, MissingFileIsError) {
  EXPECT_FALSE(
      CompareFiles(Golden("does_not_exist.json"), Golden("base_fig11.json"),
                   kDefaults)
          .ok());
}

// ---------------------------------------------------------------------------
// CompareMetric unit behavior (no files involved).
// ---------------------------------------------------------------------------
TEST(BenchCompareMetric, BelowNoiseFloorIsNoChange) {
  // 5us vs 50us is a 10x shift but both sit under the 100us floor.
  const MetricVerdict mv =
      CompareMetric("b", "m", {5e-6, 5e-6, 5e-6}, {5e-5, 5e-5, 5e-5},
                    kDefaults);
  EXPECT_EQ(mv.verdict, Verdict::kNoChange);
  EXPECT_EQ(mv.note, "below noise floor");
}

TEST(BenchCompareMetric, SingletonFallsBackToThreshold) {
  // v1-style single samples: significance is impossible, only deltas past
  // singleton_threshold (30%) are called.
  EXPECT_EQ(CompareMetric("b", "m", {1.0}, {1.5}, kDefaults).verdict,
            Verdict::kRegression);
  EXPECT_EQ(CompareMetric("b", "m", {1.0}, {0.5}, kDefaults).verdict,
            Verdict::kImprovement);
  EXPECT_EQ(CompareMetric("b", "m", {1.0}, {1.2}, kDefaults).verdict,
            Verdict::kNoChange);
  EXPECT_EQ(CompareMetric("b", "m", {1.0}, {1.5}, kDefaults).note,
            "single-shot, threshold only");
}

TEST(BenchCompareMetric, SignificantButTinyShiftIsNoChange) {
  // +1% with microscopic variance: statistically significant, but below
  // min_effect (5%) — not a practical change.
  const MetricVerdict mv = CompareMetric(
      "b", "m", {1.000, 1.0001, 0.9999}, {1.010, 1.0101, 1.0099}, kDefaults);
  EXPECT_TRUE(mv.welch.significant);
  EXPECT_EQ(mv.verdict, Verdict::kNoChange);
}

TEST(BenchCompareMetric, MinEffectIsConfigurable) {
  CompareOptions loose = kDefaults;
  loose.min_effect = 0.5;
  // A significant +30% passes the default gate but not a 50% one.
  const std::vector<double> base = {1.0, 1.01, 0.99};
  const std::vector<double> cur = {1.3, 1.31, 1.29};
  EXPECT_EQ(CompareMetric("b", "m", base, cur, kDefaults).verdict,
            Verdict::kRegression);
  EXPECT_EQ(CompareMetric("b", "m", base, cur, loose).verdict,
            Verdict::kNoChange);
}

TEST(BenchCompareDocs, OverallIsMaxSeverity) {
  BenchDoc base, cur;
  base.bench = cur.bench = "b";
  base.metrics = {{"a_seconds", {1.0, 1.01, 0.99}},
                  {"b_seconds", {1.0, 1.01, 0.99}}};
  cur.metrics = {{"a_seconds", {1.0, 1.01, 0.99}},     // no change
                 {"b_seconds", {2.0, 2.01, 1.99}}};    // regression
  CompareOptions all = kDefaults;
  all.metrics = {"all"};
  const CompareReport report = CompareDocs(base, cur, all);
  EXPECT_EQ(report.metrics.size(), 2u);
  EXPECT_EQ(report.overall, Verdict::kRegression);
}

TEST(BenchCompareDirs, GoldenDirectoryAggregates) {
  // The golden dir compared against itself: every pair is identical, so
  // the aggregate verdict is NO-CHANGE and nothing is NEW/MISSING — but
  // only BENCH_-prefixed files participate, and the goldens are not
  // BENCH_-named, so this degenerates to an empty (still valid) report.
  const std::string dir = std::string(CORADD_TESTDATA_DIR) +
                          "/golden/bench_compare";
  const auto report = CompareDirs(dir, dir, kDefaults);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ((*report).overall, Verdict::kNoChange);
  EXPECT_TRUE((*report).only_in_run.empty());
  EXPECT_TRUE((*report).only_in_baseline.empty());
}

TEST(BenchCompareDirs, MissingDirectoryIsError) {
  EXPECT_FALSE(CompareDirs("/nonexistent/base", "/nonexistent/run", kDefaults)
                   .ok());
}

}  // namespace
}  // namespace benchkit
}  // namespace coradd
