// Unit tests for the src/benchkit/ statistics kernel: descriptive
// summaries and CIs against hand-computed fixtures, MAD outlier flagging
// on planted spikes, Welch significance verdicts on known distributions,
// JSON escaping / locale-locked number emission, and the JSON reader.
#include <cmath>
#include <string>
#include <vector>

#include "benchkit/json_parser.h"
#include "benchkit/json_util.h"
#include "benchkit/stats.h"
#include "gtest/gtest.h"

namespace coradd {
namespace benchkit {
namespace {

// ---------------------------------------------------------------------------
// Descriptive statistics: {1,2,3,4,5} worked by hand.
//   mean 3, sample stddev sqrt(2.5) = 1.5811388, median 3, MAD 1,
//   ci95_half = t_{0.975,4} * stddev / sqrt(5) = 2.776 * 0.7071068.
// ---------------------------------------------------------------------------
TEST(BenchkitStats, HandComputedSummary) {
  const SampleStats s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811388300841898, 1e-12);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.ci95_half, 2.776 * 1.5811388300841898 / std::sqrt(5.0),
              1e-9);
  EXPECT_NEAR(s.ci95_lo(), 3.0 - s.ci95_half, 1e-12);
  EXPECT_NEAR(s.ci95_hi(), 3.0 + s.ci95_half, 1e-12);
  EXPECT_NEAR(s.rsd(), 1.5811388300841898 / 3.0, 1e-12);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(BenchkitStats, DegenerateSizes) {
  const SampleStats empty = Summarize({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_EQ(empty.mean, 0.0);

  const SampleStats one = Summarize({4.25});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 4.25);
  EXPECT_DOUBLE_EQ(one.median, 4.25);
  EXPECT_EQ(one.stddev, 0.0);     // n-1 denominator undefined; pinned to 0
  EXPECT_EQ(one.ci95_half, 0.0);  // no CI from a single sample
}

TEST(BenchkitStats, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);  // unsorted input
  EXPECT_DOUBLE_EQ(Median({7.0}), 7.0);
}

TEST(BenchkitStats, StudentTTable) {
  EXPECT_NEAR(StudentT975(1), 12.706, 1e-9);
  EXPECT_NEAR(StudentT975(4), 2.776, 1e-9);
  EXPECT_NEAR(StudentT975(30), 2.042, 1e-9);
  // Above the table: interpolated in 1/df, monotonically approaching 1.96.
  const double t60 = StudentT975(60);
  EXPECT_LT(t60, 2.042);
  EXPECT_GT(t60, 1.96);
  EXPECT_NEAR(StudentT975(1e9), 1.96, 1e-3);
}

// ---------------------------------------------------------------------------
// Outlier detection.
// ---------------------------------------------------------------------------
TEST(BenchkitStats, PlantedSpikeIsFlagged) {
  // median 1.025, MAD 0.075 -> modified z of the spike ~ 80.
  const std::vector<double> samples = {1.0, 1.1, 0.9, 1.05, 0.95, 10.0};
  const std::vector<bool> mask = MadOutlierMask(samples);
  ASSERT_EQ(mask.size(), samples.size());
  for (size_t i = 0; i + 1 < mask.size(); ++i) EXPECT_FALSE(mask[i]) << i;
  EXPECT_TRUE(mask.back());
  EXPECT_EQ(Summarize(samples).outliers, 1u);
}

TEST(BenchkitStats, ZeroMadFallsBackToMeanAbsoluteDeviation) {
  // Over half the samples identical -> MAD 0; the meanAD fallback must
  // still flag the spike instead of dividing by zero.
  const std::vector<bool> mask =
      MadOutlierMask({10.0, 10.0, 10.0, 10.0, 10.0, 100.0});
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask.back());
}

TEST(BenchkitStats, AllEqualSamplesHaveNoOutliers) {
  for (bool flagged : MadOutlierMask({2.0, 2.0, 2.0, 2.0})) {
    EXPECT_FALSE(flagged);
  }
}

TEST(BenchkitStats, TightClusterHasNoOutliers) {
  for (bool flagged : MadOutlierMask({1.0, 1.02, 0.98, 1.01, 0.99})) {
    EXPECT_FALSE(flagged);
  }
}

// ---------------------------------------------------------------------------
// Welch's t-test.
// ---------------------------------------------------------------------------
TEST(BenchkitWelch, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1.0, 1.1, 0.9};
  const WelchResult r = WelchTTest(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_FALSE(r.significant);
}

TEST(BenchkitWelch, ClearSeparationIsSignificant) {
  const WelchResult r =
      WelchTTest({1.0, 1.01, 0.99}, {2.0, 2.01, 1.99});
  EXPECT_GT(std::abs(r.t), 100.0);
  EXPECT_TRUE(r.significant);
  // Equal variances -> Welch df equals the pooled df (n1 + n2 - 2 = 4).
  EXPECT_NEAR(r.df, 4.0, 1e-6);
}

TEST(BenchkitWelch, OverlappingNoiseNotSignificant) {
  const WelchResult r =
      WelchTTest({1.0, 2.4, 0.6, 3.0}, {2.9, 0.8, 4.1, 1.1});
  EXPECT_FALSE(r.significant);
}

TEST(BenchkitWelch, ZeroVarianceBothSides) {
  EXPECT_TRUE(WelchTTest({1.0, 1.0}, {2.0, 2.0}).significant);
  EXPECT_FALSE(WelchTTest({2.0, 2.0}, {2.0, 2.0}).significant);
}

TEST(BenchkitWelch, DirectionOfT) {
  // t has the sign of mean(first) - mean(second); CompareMetric passes
  // (cur, base), so a slower current run yields positive t.
  const WelchResult faster = WelchTTest({1.0, 1.1, 0.9}, {2.0, 2.1, 1.9});
  const WelchResult slower = WelchTTest({2.0, 2.1, 1.9}, {1.0, 1.1, 0.9});
  EXPECT_LT(faster.t, 0.0);
  EXPECT_GT(slower.t, 0.0);
}

// ---------------------------------------------------------------------------
// JSON emission helpers.
// ---------------------------------------------------------------------------
TEST(BenchkitJson, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonQuote("x"), "\"x\"");
}

TEST(BenchkitJson, NumbersAreLocaleLockedAndFinite) {
  EXPECT_EQ(JsonNum(0.25, 6), "0.25");
  EXPECT_EQ(JsonNum(-3.0, 6), "-3");
  EXPECT_EQ(JsonNum(std::nan(""), 6), "null");
  EXPECT_EQ(JsonNum(INFINITY, 6), "null");
  // Never a comma decimal separator, whatever the process locale.
  EXPECT_EQ(JsonNum(1234.5, 9).find(','), std::string::npos);
}

TEST(BenchkitJson, RoundTripThroughParser) {
  const std::string doc = "{\"name\": " + JsonQuote("a\"b\nc") +
                          ", \"v\": " + JsonNum(0.125, 9) + "}";
  const auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().StringOr("name", ""), "a\"b\nc");
  EXPECT_DOUBLE_EQ(parsed.value().NumberOr("v", 0.0), 0.125);
}

// ---------------------------------------------------------------------------
// JSON reader.
// ---------------------------------------------------------------------------
TEST(BenchkitJsonParser, ParsesBenchShapedDocument) {
  const auto parsed = ParseJson(
      "{\"schema_version\": 2, \"bench\": \"x\", \"ok\": true,\n"
      " \"metrics\": [{\"name\": \"wall_seconds\",\n"
      "                \"samples\": [0.5, 1.5e0, -0.25]}],\n"
      " \"nothing\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& v = parsed.value();
  EXPECT_DOUBLE_EQ(v.NumberOr("schema_version", 0), 2.0);
  EXPECT_EQ(v.StringOr("bench", ""), "x");
  ASSERT_NE(v.Find("ok"), nullptr);
  EXPECT_TRUE(v.Find("ok")->AsBool());
  EXPECT_TRUE(v.Find("nothing")->is_null());
  const JsonValue* metrics = v.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  const JsonArray& samples =
      metrics->AsArray()[0].Find("samples")->AsArray();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].AsNumber(), 0.5);
  EXPECT_DOUBLE_EQ(samples[1].AsNumber(), 1.5);
  EXPECT_DOUBLE_EQ(samples[2].AsNumber(), -0.25);
}

TEST(BenchkitJsonParser, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
}

TEST(BenchkitJsonParser, UnicodeEscapes) {
  const auto parsed = ParseJson("{\"s\": \"a\\u0041\\n\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().StringOr("s", ""), "aA\n");
}

}  // namespace
}  // namespace benchkit
}  // namespace coradd
