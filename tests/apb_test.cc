// Tests for the APB-1-like generator (src/apb): star-schema shape, dimension
// hierarchies, FK integrity, skew, and the 31-query two-fact workload (§7.1).
#include <gtest/gtest.h>

#include <set>

#include "apb/apb.h"
#include "catalog/universe.h"

namespace coradd {
namespace apb {
namespace {

class ApbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    options_ = new ApbOptions();
    options_->scale = 0.0005;  // ~22.5k actuals rows
    catalog_ = MakeCatalog(*options_).release();
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete options_;
  }
  static ApbOptions* options_;
  static Catalog* catalog_;
};

ApbOptions* ApbTest::options_ = nullptr;
Catalog* ApbTest::catalog_ = nullptr;

TEST_F(ApbTest, TwoFactTablesRegistered) {
  EXPECT_NE(catalog_->GetFactInfo("actuals"), nullptr);
  EXPECT_NE(catalog_->GetFactInfo("budget"), nullptr);
  EXPECT_EQ(catalog_->GetTable("actuals")->NumRows(), options_->ActualsRows());
  EXPECT_EQ(catalog_->GetTable("budget")->NumRows(), options_->BudgetRows());
}

TEST_F(ApbTest, ProductHierarchyIsFunctionalUpward) {
  const Table* p = catalog_->GetTable("product");
  const int code = p->schema().ColumnIndex("pr_code");
  const int cls = p->schema().ColumnIndex("pr_class");
  const int grp = p->schema().ColumnIndex("pr_group");
  const int fam = p->schema().ColumnIndex("pr_family");
  const int lin = p->schema().ColumnIndex("pr_line");
  const int div = p->schema().ColumnIndex("pr_division");
  // Each level must functionally determine all coarser levels.
  std::map<int64_t, int64_t> cls_to_grp, grp_to_fam, fam_to_lin, lin_to_div;
  for (RowId r = 0; r < p->NumRows(); ++r) {
    EXPECT_EQ(p->Value(r, code), static_cast<int64_t>(r));
    auto check = [&](std::map<int64_t, int64_t>& m, int64_t k, int64_t v) {
      auto it = m.find(k);
      if (it == m.end()) {
        m[k] = v;
      } else {
        EXPECT_EQ(it->second, v);
      }
    };
    check(cls_to_grp, p->Value(r, cls), p->Value(r, grp));
    check(grp_to_fam, p->Value(r, grp), p->Value(r, fam));
    check(fam_to_lin, p->Value(r, fam), p->Value(r, lin));
    check(lin_to_div, p->Value(r, lin), p->Value(r, div));
  }
}

TEST_F(ApbTest, HierarchyWidthsDecreaseUpward) {
  const ProductHierarchy h = ProductHierarchy::For(3000);
  EXPECT_GT(h.codes, h.classes);
  EXPECT_GT(h.classes, h.groups);
  EXPECT_GT(h.groups, h.families);
  EXPECT_GT(h.families, h.lines);
  EXPECT_GT(h.lines, h.divisions);
  EXPECT_GE(h.divisions, 2u);
}

TEST_F(ApbTest, StoreRetailerHierarchy) {
  const Table* c = catalog_->GetTable("customer");
  const int store = c->schema().ColumnIndex("cu_store");
  const int retailer = c->schema().ColumnIndex("cu_retailer");
  for (RowId r = 0; r < c->NumRows(); ++r) {
    EXPECT_EQ(c->Value(r, retailer), c->Value(r, store) / 10);
  }
}

TEST_F(ApbTest, TimeDimensionCoversTwoYears) {
  const Table* t = catalog_->GetTable("time");
  EXPECT_EQ(t->NumRows(), static_cast<size_t>(kNumMonths));
  const int year = t->schema().ColumnIndex("t_year");
  const int qk = t->schema().ColumnIndex("t_quarterkey");
  std::set<int64_t> years, quarters;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    years.insert(t->Value(r, year));
    quarters.insert(t->Value(r, qk));
  }
  EXPECT_EQ(years.size(), 2u);
  EXPECT_EQ(quarters.size(), 8u);
}

TEST_F(ApbTest, FactForeignKeysResolve) {
  Universe actuals(*catalog_, *catalog_->GetFactInfo("actuals"));
  Universe budget(*catalog_, *catalog_->GetFactInfo("budget"));
  EXPECT_GT(actuals.NumColumns(), 7u);
  EXPECT_GT(budget.NumColumns(), 5u);
}

TEST_F(ApbTest, ProductPopularityIsSkewed) {
  const Table* a = catalog_->GetTable("actuals");
  const int prod = a->schema().ColumnIndex("a_product");
  uint64_t top_decile = 0;
  const ProductHierarchy h = ProductHierarchy::For(options_->num_products);
  for (RowId r = 0; r < a->NumRows(); ++r) {
    if (a->Value(r, prod) < static_cast<int64_t>(h.codes / 10)) ++top_decile;
  }
  EXPECT_GT(top_decile, a->NumRows() / 5);  // >20% of sales in top 10%
}

TEST_F(ApbTest, WorkloadHas31QueriesAcrossBothFacts) {
  const Workload w = MakeWorkload(*options_);
  EXPECT_EQ(w.queries.size(), 31u);
  EXPECT_EQ(w.QueriesForFact("actuals").size(), 24u);
  EXPECT_EQ(w.QueriesForFact("budget").size(), 7u);
  std::set<std::string> ids;
  for (const auto& q : w.queries) ids.insert(q.id);
  EXPECT_EQ(ids.size(), 31u);
}

TEST_F(ApbTest, WorkloadColumnsResolve) {
  Universe actuals(*catalog_, *catalog_->GetFactInfo("actuals"));
  Universe budget(*catalog_, *catalog_->GetFactInfo("budget"));
  for (const auto& q : MakeWorkload(*options_).queries) {
    const Universe& u = q.fact_table == "actuals" ? actuals : budget;
    for (const auto& col : q.AllColumns()) {
      EXPECT_GE(u.ColumnIndex(col), 0) << q.id << " references " << col;
    }
  }
}

TEST_F(ApbTest, FrequenciesArePositive) {
  for (const auto& q : MakeWorkload(*options_).queries) {
    EXPECT_GT(q.frequency, 0.0) << q.id;
  }
}

TEST_F(ApbTest, Deterministic) {
  auto again = MakeCatalog(*options_);
  const Table* a = catalog_->GetTable("actuals");
  const Table* b = again->GetTable("actuals");
  ASSERT_EQ(a->NumRows(), b->NumRows());
  for (RowId r = 0; r < 200; ++r) {
    for (size_t c = 0; c < a->schema().NumColumns(); ++c) {
      ASSERT_EQ(a->Value(r, c), b->Value(r, c));
    }
  }
}

}  // namespace
}  // namespace apb
}  // namespace coradd
