// Tests for src/stats: histogram estimates, distinct-value sampling, the
// one-scan synopsis, pairwise correlation strengths, and the AE estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "catalog/universe.h"
#include "common/rng.h"
#include "stats/ae_estimator.h"
#include "stats/correlation.h"
#include "stats/distinct_sampler.h"
#include "stats/histogram.h"
#include "stats/stats_collector.h"

namespace coradd {
namespace {

// ---------- Histogram ----------

TEST(HistogramTest, ExactOnNarrowDomain) {
  std::vector<int64_t> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 10);
  const Histogram h = Histogram::Build(values, 256);
  EXPECT_EQ(h.distinct_estimate(), 10u);
  EXPECT_NEAR(h.SelectivityEqual(3), 0.1, 1e-9);
  EXPECT_NEAR(h.SelectivityRange(0, 4), 0.5, 1e-9);
  EXPECT_NEAR(h.SelectivityIn({1, 2}), 0.2, 1e-9);
}

TEST(HistogramTest, OutOfDomainIsZero) {
  const Histogram h = Histogram::Build({1, 2, 3}, 16);
  EXPECT_EQ(h.SelectivityEqual(99), 0.0);
  EXPECT_EQ(h.SelectivityRange(10, 20), 0.0);
  EXPECT_EQ(h.SelectivityRange(3, 1), 0.0);
}

TEST(HistogramTest, RangeClampsToDomain) {
  const Histogram h = Histogram::Build({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 16);
  EXPECT_NEAR(h.SelectivityRange(-100, 100), 1.0, 1e-9);
  EXPECT_NEAR(h.SelectivityRange(8, 100), 0.2, 1e-9);
}

TEST(HistogramTest, WideDomainApproximates) {
  Rng rng(3);
  std::vector<int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Uniform(1000000)));
  }
  const Histogram h = Histogram::Build(values, 128);
  EXPECT_EQ(h.num_buckets(), 128u);
  // Uniform data: a 10% range selects ~10%.
  EXPECT_NEAR(h.SelectivityRange(0, 99999), 0.1, 0.02);
}

TEST(HistogramTest, EmptyInput) {
  const Histogram h = Histogram::Build({}, 16);
  EXPECT_EQ(h.num_rows(), 0u);
  EXPECT_EQ(h.SelectivityEqual(1), 0.0);
}

TEST(HistogramTest, SkewedEqualityUsesBucketDistinct) {
  // 990 copies of value 5 plus ten other values: eq on 5 within its bucket.
  std::vector<int64_t> values(990, 5);
  for (int64_t i = 0; i < 10; ++i) values.push_back(100 + i);
  const Histogram h = Histogram::Build(values, 256);
  EXPECT_NEAR(h.SelectivityEqual(5), 0.99, 1e-9);
}

// ---------- DistinctSampler (Gibbons) ----------

TEST(DistinctSamplerTest, ExactWhenUnderCapacity) {
  DistinctSampler s(1024);
  for (int64_t v = 0; v < 500; ++v) s.Add(v % 100);
  EXPECT_EQ(s.level(), 0);
  EXPECT_NEAR(s.EstimateDistinct(), 100.0, 1e-9);
}

TEST(DistinctSamplerTest, ApproximatesAboveCapacity) {
  DistinctSampler s(256);
  for (int64_t v = 0; v < 100000; ++v) s.Add(v);
  EXPECT_GT(s.level(), 0);
  EXPECT_NEAR(s.EstimateDistinct(), 100000.0, 100000.0 * 0.25);
}

TEST(DistinctSamplerTest, RepeatsDoNotInflate) {
  DistinctSampler s(256);
  for (int pass = 0; pass < 20; ++pass) {
    for (int64_t v = 0; v < 1000; ++v) s.Add(v);
  }
  EXPECT_NEAR(s.EstimateDistinct(), 1000.0, 300.0);
}

TEST(DistinctSamplerTest, SampleValuesAreRealValues) {
  DistinctSampler s(64);
  for (int64_t v = 0; v < 10000; ++v) s.Add(v * 3);
  for (int64_t v : s.SampleValues()) EXPECT_EQ(v % 3, 0);
}

// ---------- AE / GEE ----------

struct AeCase {
  uint64_t distinct;
  uint64_t total;
  double tolerance_factor;  // allowed multiplicative error
};

class AeEstimatorTest : public ::testing::TestWithParam<AeCase> {};

TEST_P(AeEstimatorTest, EstimatesUniformWithinFactor) {
  const AeCase c = GetParam();
  Rng rng(c.distinct * 7 + 1);
  std::vector<int64_t> sample;
  const size_t n = 4096;
  for (size_t i = 0; i < n; ++i) {
    sample.push_back(static_cast<int64_t>(rng.Uniform(c.distinct)));
  }
  const auto profile = SampleFrequencyProfile::FromValues(sample, c.total);
  const double ae = EstimateDistinctAe(profile);
  EXPECT_GE(ae, static_cast<double>(c.distinct) / c.tolerance_factor);
  EXPECT_LE(ae, static_cast<double>(c.distinct) * c.tolerance_factor);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AeEstimatorTest,
    ::testing::Values(AeCase{100, 100000, 1.5}, AeCase{1000, 100000, 2.0},
                      AeCase{5000, 1000000, 6.0}, AeCase{50, 50000, 1.5}));

TEST(AeEstimatorTest, FullSampleIsExact) {
  std::vector<int64_t> sample;
  for (int64_t v = 0; v < 500; ++v) sample.push_back(v % 50);
  const auto profile = SampleFrequencyProfile::FromValues(sample, 500);
  EXPECT_NEAR(EstimateDistinctAe(profile), 50.0, 1e-9);
  EXPECT_NEAR(EstimateDistinctGee(profile), 50.0, 1e-9);
}

TEST(AeEstimatorTest, ClampedToAtLeastSampleDistinct) {
  std::vector<int64_t> sample = {1, 2, 3, 4, 5};
  const auto profile = SampleFrequencyProfile::FromValues(sample, 1000000);
  EXPECT_GE(EstimateDistinctAe(profile), 5.0);
  EXPECT_LE(EstimateDistinctAe(profile), 1000000.0);
}

TEST(AeEstimatorTest, GeeMatchesFormula) {
  // 4 singletons, 1 doubleton: d=5, f1=4. GEE = sqrt(N/n)*4 + 1.
  std::vector<int64_t> sample = {1, 2, 3, 4, 5, 5};
  const auto p = SampleFrequencyProfile::FromValues(sample, 600);
  EXPECT_EQ(p.f1, 4u);
  EXPECT_EQ(p.f2, 1u);
  EXPECT_EQ(p.distinct_in_sample, 5u);
  EXPECT_NEAR(EstimateDistinctGee(p), std::sqrt(100.0) * 4 + 1, 1e-9);
}

TEST(AeEstimatorTest, SortedProfileMatchesHashedProfile) {
  Rng rng(5);
  std::vector<int64_t> sample;
  for (int i = 0; i < 2000; ++i) {
    sample.push_back(static_cast<int64_t>(rng.Uniform(300)));
  }
  const auto a = SampleFrequencyProfile::FromValues(sample, 100000);
  std::sort(sample.begin(), sample.end());
  const auto b = SampleFrequencyProfile::FromSortedValues(sample, 100000);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.f2, b.f2);
  EXPECT_EQ(a.distinct_in_sample, b.distinct_in_sample);
}

// ---------- Synopsis + CorrelationCatalog ----------

class CorrelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // city -> state (10 cities per state), val independent.
    auto dim = std::make_unique<Table>(
        Schema({{"d_key", ValueType::kInt, 4, {}},
                {"d_city", ValueType::kInt, 4, {}},
                {"d_state", ValueType::kInt, 4, {}}}),
        "dim");
    for (int64_t k = 0; k < 200; ++k) dim->AppendRow({k, k, k / 10});
    catalog_.AddTable(std::move(dim));

    auto fact = std::make_unique<Table>(
        Schema({{"f_id", ValueType::kInt, 4, {}},
                {"f_dim", ValueType::kInt, 4, {}},
                {"f_val", ValueType::kInt, 4, {}}}),
        "fact");
    Rng rng(77);
    for (int64_t i = 0; i < 20000; ++i) {
      fact->AppendRow({i, static_cast<int64_t>(rng.Uniform(200)),
                       static_cast<int64_t>(rng.Uniform(1000))});
    }
    catalog_.AddTable(std::move(fact));
    info_ = {"fact", {"f_id"}, {{"f_dim", "dim", "d_key"}}};
    catalog_.RegisterFactTable(info_);
    universe_ = std::make_unique<Universe>(catalog_, info_);
  }

  Catalog catalog_;
  FactTableInfo info_;
  std::unique_ptr<Universe> universe_;
};

TEST_F(CorrelationTest, SynopsisDrawsRequestedRows) {
  const Synopsis s = Synopsis::Build(*universe_, 1000, 42);
  EXPECT_EQ(s.sample_rows(), 1000u);
  EXPECT_EQ(s.total_rows(), 20000u);
  EXPECT_EQ(s.num_columns(), universe_->NumColumns());
}

TEST_F(CorrelationTest, SynopsisCapsAtTableSize) {
  const Synopsis s = Synopsis::Build(*universe_, 100000, 42);
  EXPECT_EQ(s.sample_rows(), 20000u);
}

TEST_F(CorrelationTest, SynopsisDeterministic) {
  const Synopsis a = Synopsis::Build(*universe_, 500, 42);
  const Synopsis b = Synopsis::Build(*universe_, 500, 42);
  EXPECT_EQ(a.Values(0), b.Values(0));
}

TEST_F(CorrelationTest, FunctionalDependencyHasStrengthOne) {
  const Synopsis syn = Synopsis::Build(*universe_, 4096, 42);
  CorrelationCatalog corr(universe_.get(), &syn, /*exact=*/true);
  const int city = universe_->ColumnIndex("d_city");
  const int state = universe_->ColumnIndex("d_state");
  EXPECT_NEAR(corr.Strength(city, state), 1.0, 1e-9);
  // Reverse direction: each state has 10 cities -> strength 0.1.
  EXPECT_NEAR(corr.Strength(state, city), 0.1, 1e-9);
}

TEST_F(CorrelationTest, IndependentAttributesAreWeak) {
  const Synopsis syn = Synopsis::Build(*universe_, 4096, 42);
  CorrelationCatalog corr(universe_.get(), &syn, /*exact=*/true);
  const int state = universe_->ColumnIndex("d_state");
  const int val = universe_->ColumnIndex("f_val");
  // 20 states x 1000 vals: joint ~ 20000 capped by rows -> strength ~ 1/1000.
  EXPECT_LT(corr.Strength(state, val), 0.01);
}

TEST_F(CorrelationTest, EstimatedStrengthTracksExact) {
  const Synopsis syn = Synopsis::Build(*universe_, 4096, 42);
  CorrelationCatalog exact(universe_.get(), &syn, /*exact=*/true);
  CorrelationCatalog estimated(universe_.get(), &syn, /*exact=*/false);
  const int city = universe_->ColumnIndex("d_city");
  const int state = universe_->ColumnIndex("d_state");
  EXPECT_NEAR(estimated.Strength(city, state), exact.Strength(city, state),
              0.2);
}

TEST_F(CorrelationTest, StatsCollectorBuildsEverything) {
  StatsOptions options;
  options.sample_rows = 2048;
  UniverseStats stats(universe_.get(), options);
  EXPECT_EQ(stats.num_rows(), 20000u);
  EXPECT_NEAR(stats.ColumnDistinct(universe_->ColumnIndex("d_state")), 20.0,
              1e-9);
  EXPECT_GT(stats.CompositeDistinct({universe_->ColumnIndex("d_city"),
                                     universe_->ColumnIndex("d_state")}),
            100.0);
  EXPECT_EQ(stats.synopsis().sample_rows(), 2048u);
}

}  // namespace
}  // namespace coradd
