// Tests for CM-based query rewriting (A-1.3) and DDL export.
#include <gtest/gtest.h>

#include "core/coradd_designer.h"
#include "core/ddl_export.h"
#include "cost/correlation_cost_model.h"
#include "exec/executor.h"
#include "exec/rewrite.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.005;
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    sopt.disk.page_size_bytes = 1024;
    sopt.disk.seek_seconds = 0.0055 / 8.0;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    model_ = new CorrelationCostModel(registry_);

    // Fact table re-clustered on orderdate with a commitdate CM: the
    // paper's running example (A-1.3).
    MvSpec spec;
    spec.name = "lineorder_by_od";
    spec.fact_table = "lineorder";
    for (size_t c = 0; c < universe_->fact_table().schema().NumColumns();
         ++c) {
      spec.columns.push_back(universe_->fact_table().schema().Column(c).name);
    }
    spec.clustered_key = {"lo_orderdate"};
    spec.is_fact_recluster = true;
    CmSpec cm;
    cm.key_columns = {"lo_commitdate"};
    Materializer materializer(universe_, stats_->options().disk);
    object_ = materializer.Materialize(spec, {cm}).release();
  }
  static void TearDownTestSuite() {
    delete object_;
    delete model_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  static Query CommitDateQuery(int64_t lo, int64_t hi) {
    Query q;
    q.id = "rw";
    q.fact_table = "lineorder";
    q.predicates = {Predicate::Range("lo_commitdate", lo, hi)};
    q.aggregates = {{"lo_extendedprice", "lo_discount"}};
    return q;
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static CorrelationCostModel* model_;
  static MaterializedObject* object_;
};

Catalog* RewriteTest::catalog_ = nullptr;
Universe* RewriteTest::universe_ = nullptr;
UniverseStats* RewriteTest::stats_ = nullptr;
StatsRegistry* RewriteTest::registry_ = nullptr;
CorrelationCostModel* RewriteTest::model_ = nullptr;
MaterializedObject* RewriteTest::object_ = nullptr;

TEST_F(RewriteTest, AddsSteeringPredicateOnClusteredAttr) {
  const Query q = CommitDateQuery(19950101, 19950107);
  const RewriteResult r = RewriteWithCms(q, *object_);
  ASSERT_TRUE(r.rewritten);
  EXPECT_EQ(r.added_predicates, 1);
  ASSERT_EQ(r.query.predicates.size(), 2u);
  EXPECT_EQ(r.query.predicates[1].column, "lo_orderdate");
  EXPECT_EQ(r.query.predicates[1].type, PredicateType::kIn);
  EXPECT_GT(r.enumerated_values, 0u);
}

TEST_F(RewriteTest, RewritePreservesSemantics) {
  // The steering predicate must not change the result: same rows, same
  // aggregate, on the rewritten query.
  const Query original = CommitDateQuery(19950301, 19950305);
  const RewriteResult r = RewriteWithCms(original, *object_);
  ASSERT_TRUE(r.rewritten);

  auto evaluate = [&](const Query& q) {
    double agg = 0.0;
    uint64_t rows = 0;
    const Table& t = object_->table->table();
    const int cd = t.schema().ColumnIndex("lo_commitdate");
    const int od = t.schema().ColumnIndex("lo_orderdate");
    const int price = t.schema().ColumnIndex("lo_extendedprice");
    const int disc = t.schema().ColumnIndex("lo_discount");
    for (RowId row = 0; row < t.NumRows(); ++row) {
      bool ok = true;
      for (const auto& p : q.predicates) {
        const int col = p.column == "lo_commitdate" ? cd : od;
        if (!p.Matches(t.Value(row, static_cast<size_t>(col)))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++rows;
      agg += static_cast<double>(t.Value(row, static_cast<size_t>(price))) *
             static_cast<double>(t.Value(row, static_cast<size_t>(disc)));
    }
    return std::make_pair(agg, rows);
  };
  const auto [agg_orig, rows_orig] = evaluate(original);
  const auto [agg_rw, rows_rw] = evaluate(r.query);
  EXPECT_EQ(rows_orig, rows_rw);
  EXPECT_NEAR(agg_orig, agg_rw, std::abs(agg_orig) * 1e-12 + 1e-9);
  EXPECT_GT(rows_orig, 0u);
}

TEST_F(RewriteTest, RewrittenQueryUsesClusteredAccess) {
  // After rewriting, the plain clustered-prefix machinery can serve the
  // query: the added IN predicate turns the correlated region into ranges.
  const Query q = CommitDateQuery(19950601, 19950603);
  const RewriteResult r = RewriteWithCms(q, *object_);
  ASSERT_TRUE(r.rewritten);
  const ClusteredPrefixPlan plan = AnalyzeClusteredPrefix(
      r.query, object_->spec.clustered_key, *stats_);
  EXPECT_TRUE(plan.usable());
}

TEST_F(RewriteTest, NoCmMeansNoRewrite) {
  Query q;
  q.id = "norw";
  q.fact_table = "lineorder";
  q.predicates = {Predicate::Eq("lo_quantity", 5)};  // no CM on quantity
  q.aggregates = {{"lo_revenue", ""}};
  const RewriteResult r = RewriteWithCms(q, *object_);
  EXPECT_FALSE(r.rewritten);
  EXPECT_EQ(r.query.predicates.size(), 1u);
}

TEST_F(RewriteTest, AlreadyClusteredPredicateSkipsRewrite) {
  Query q = CommitDateQuery(19950101, 19950107);
  q.predicates.push_back(Predicate::Range("lo_orderdate", 19941001, 19950107));
  const RewriteResult r = RewriteWithCms(q, *object_);
  EXPECT_FALSE(r.rewritten);
}

TEST_F(RewriteTest, HugeExpansionIsSkipped) {
  // A predicate matching nearly everything would need a gigantic IN-list;
  // the rewriter must decline rather than emit it.
  const Query q = CommitDateQuery(19920101, 19990101);
  const RewriteResult r = RewriteWithCms(q, *object_, /*max_in_values=*/64);
  EXPECT_FALSE(r.rewritten);
}

// ---------- DDL export ----------

TEST(DdlExportTest, RendersAllObjectKinds) {
  ssb::SsbOptions options;
  options.scale_factor = 0.002;
  auto catalog = ssb::MakeCatalog(options);
  Workload workload = ssb::MakeWorkload();
  StatsOptions sopt;
  sopt.sample_rows = 2048;
  sopt.disk.page_size_bytes = 1024;
  DesignContext context(catalog.get(), workload, sopt);
  CoraddOptions copt;
  copt.use_feedback = false;
  copt.candidates.grouping.alphas = {0.0, 0.5};
  copt.candidates.grouping.restarts = 1;
  CoraddDesigner designer(&context, copt);
  const DatabaseDesign design = designer.Design(workload, 32ull << 20);

  const std::string ddl = ExportDdl(design, workload);
  EXPECT_NE(ddl.find("CORADD design"), std::string::npos);
  EXPECT_NE(ddl.find("-- query routing"), std::string::npos);
  // Every query appears in the routing section.
  for (const auto& q : workload.queries) {
    EXPECT_NE(ddl.find(q.id), std::string::npos) << q.id;
  }
  // Non-base objects appear as DDL statements.
  for (const auto& obj : design.objects) {
    if (obj.spec.is_base) continue;
    if (obj.spec.is_fact_recluster) {
      EXPECT_NE(ddl.find("CLUSTER TABLE " + obj.spec.fact_table),
                std::string::npos);
    } else {
      EXPECT_NE(ddl.find(obj.spec.name), std::string::npos);
    }
  }
}

TEST(DdlExportTest, RoutingCanBeDisabled) {
  DatabaseDesign design;
  design.designer = "CORADD";
  DesignedObject base;
  base.spec.name = "b";
  base.spec.fact_table = "f";
  base.spec.is_fact_recluster = true;
  base.spec.is_base = true;
  base.spec.clustered_key = {"pk"};
  design.objects.push_back(base);
  Workload w;
  DdlOptions options;
  options.include_routing = false;
  const std::string ddl = ExportDdl(design, w, options);
  EXPECT_EQ(ddl.find("query routing"), std::string::npos);
}

}  // namespace
}  // namespace coradd
