// End-to-end smoke test: tiny SSB, full CORADD pipeline, executed designs.
// Deeper per-module behaviour is covered by the dedicated test files; this
// one asserts the pipeline holds together and answers stay consistent.
#include <gtest/gtest.h>

#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class SmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.002;  // ~12k lineorder rows
    catalog_ = ssb::MakeCatalog(options).release();
    workload_ = new Workload(ssb::MakeWorkload());
    StatsOptions stats;
    stats.sample_rows = 4096;
    context_ = new DesignContext(catalog_, *workload_, stats);
  }
  static void TearDownTestSuite() {
    delete context_;
    delete workload_;
    delete catalog_;
  }

  static Catalog* catalog_;
  static Workload* workload_;
  static DesignContext* context_;
};

Catalog* SmokeTest::catalog_ = nullptr;
Workload* SmokeTest::workload_ = nullptr;
DesignContext* SmokeTest::context_ = nullptr;

TEST_F(SmokeTest, CoraddDesignsAndRuns) {
  CoraddOptions options;
  options.feedback.max_iterations = 1;
  CoraddDesigner designer(context_, options);
  const uint64_t budget = 64ull << 20;  // 64 MB
  DatabaseDesign design = designer.Design(*workload_, budget);

  EXPECT_FALSE(design.objects.empty());
  EXPECT_LE(design.object_bytes, budget);
  for (int oi : design.object_for_query) EXPECT_GE(oi, 0);

  DesignEvaluator evaluator(context_);
  const WorkloadRunResult run =
      evaluator.Run(design, *workload_, designer.model());
  EXPECT_GT(run.total_seconds, 0.0);
  EXPECT_EQ(run.per_query.size(), workload_->queries.size());
}

TEST_F(SmokeTest, DesignsAgreeOnQueryAnswers) {
  // The same query must return the same aggregate on every design: a base-
  // only design vs. a full CORADD design.
  CoraddOptions options;
  options.feedback.max_iterations = 0;
  options.use_feedback = false;
  CoraddDesigner designer(context_, options);
  DatabaseDesign rich = designer.Design(*workload_, 64ull << 20);
  DatabaseDesign poor = designer.Design(*workload_, 0);  // base only

  DesignEvaluator evaluator(context_);
  const WorkloadRunResult run_rich =
      evaluator.Run(rich, *workload_, designer.model());
  const WorkloadRunResult run_poor =
      evaluator.Run(poor, *workload_, designer.model());
  ASSERT_EQ(run_rich.per_query.size(), run_poor.per_query.size());
  for (size_t i = 0; i < run_rich.per_query.size(); ++i) {
    EXPECT_NEAR(run_rich.per_query[i].aggregate,
                run_poor.per_query[i].aggregate,
                1e-6 * std::abs(run_poor.per_query[i].aggregate) + 1e-6)
        << workload_->queries[i].id;
    EXPECT_EQ(run_rich.per_query[i].rows_output,
              run_poor.per_query[i].rows_output)
        << workload_->queries[i].id;
  }
}

TEST_F(SmokeTest, BaselinesDesignAndRun) {
  const uint64_t budget = 32ull << 20;
  NaiveDesigner naive(context_);
  DatabaseDesign naive_design = naive.Design(*workload_, budget);
  EXPECT_FALSE(naive_design.objects.empty());

  CommercialDesigner commercial(context_);
  DatabaseDesign comm_design = commercial.Design(*workload_, budget);
  EXPECT_FALSE(comm_design.objects.empty());

  DesignEvaluator evaluator(context_);
  const WorkloadRunResult naive_run =
      evaluator.Run(naive_design, *workload_, naive.model());
  const WorkloadRunResult comm_run =
      evaluator.Run(comm_design, *workload_, commercial.model());
  EXPECT_GT(naive_run.total_seconds, 0.0);
  EXPECT_GT(comm_run.total_seconds, 0.0);
}

}  // namespace
}  // namespace coradd
