// Tests for src/core: DesignContext construction, CORADD designer invariants
// (budget respected, cost monotone in budget, at most one re-clustering per
// fact), baseline designers, evaluator routing, and DDL export.
#include <gtest/gtest.h>

#include "core/baseline_designers.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.003;
    catalog_ = ssb::MakeCatalog(options).release();
    workload_ = new Workload(ssb::MakeWorkload());
    StatsOptions sopt;
    sopt.sample_rows = 2048;
    sopt.disk.page_size_bytes = 1024;
    context_ = new DesignContext(catalog_, *workload_, sopt);
  }
  static void TearDownTestSuite() {
    delete context_;
    delete workload_;
    delete catalog_;
  }

  static CoraddOptions FastOptions() {
    CoraddOptions options;
    options.candidates.grouping.alphas = {0.0, 0.5};
    options.candidates.grouping.restarts = 1;
    options.feedback.max_iterations = 1;
    return options;
  }

  static Catalog* catalog_;
  static Workload* workload_;
  static DesignContext* context_;
};

Catalog* CoreTest::catalog_ = nullptr;
Workload* CoreTest::workload_ = nullptr;
DesignContext* CoreTest::context_ = nullptr;

TEST_F(CoreTest, ContextBuildsUniversePerFact) {
  EXPECT_NE(context_->UniverseForFact("lineorder"), nullptr);
  EXPECT_EQ(context_->UniverseForFact("nope"), nullptr);
  EXPECT_NE(context_->StatsForFact("lineorder"), nullptr);
}

TEST_F(CoreTest, DesignRespectsBudget) {
  CoraddDesigner designer(context_, FastOptions());
  for (uint64_t budget : {0ull, 1ull << 20, 8ull << 20, 64ull << 20}) {
    const DatabaseDesign d = designer.Design(*workload_, budget);
    EXPECT_LE(d.object_bytes, budget) << budget;
    // Every query routed somewhere.
    for (int oi : d.object_for_query) {
      ASSERT_GE(oi, 0);
      ASSERT_LT(static_cast<size_t>(oi), d.objects.size());
    }
  }
}

TEST_F(CoreTest, ExpectedCostMonotoneInBudget) {
  CoraddDesigner designer(context_, FastOptions());
  double prev = -1.0;
  for (uint64_t budget : {0ull, 2ull << 20, 8ull << 20, 32ull << 20}) {
    const DatabaseDesign d = designer.Design(*workload_, budget);
    if (prev >= 0.0) {
      EXPECT_LE(d.expected_seconds, prev + 1e-9) << budget;
    }
    prev = d.expected_seconds;
  }
}

TEST_F(CoreTest, ZeroBudgetIsBaseOnlyDesign) {
  CoraddDesigner designer(context_, FastOptions());
  const DatabaseDesign d = designer.Design(*workload_, 0);
  ASSERT_EQ(d.objects.size(), 1u);
  EXPECT_TRUE(d.objects[0].spec.is_base);
  EXPECT_EQ(d.object_bytes, 0u);
}

TEST_F(CoreTest, AtMostOneFactClustering) {
  CoraddDesigner designer(context_, FastOptions());
  for (uint64_t budget : {4ull << 20, 64ull << 20}) {
    const DatabaseDesign d = designer.Design(*workload_, budget);
    int reclusters = 0;
    for (const auto& obj : d.objects) {
      if (obj.spec.is_fact_recluster && !obj.spec.is_base) ++reclusters;
    }
    EXPECT_LE(reclusters, 1) << budget;
  }
}

TEST_F(CoreTest, RunInfoIsPopulated) {
  CoraddDesigner designer(context_, FastOptions());
  designer.Design(*workload_, 8ull << 20);
  const CoraddRunInfo& info = designer.last_run();
  EXPECT_GT(info.candidates_enumerated, 0u);
  EXPECT_GT(info.candidates_after_domination, 0u);
  EXPECT_LE(info.candidates_after_domination, info.candidates_enumerated);
  EXPECT_GT(info.candgen_seconds, 0.0);
}

TEST_F(CoreTest, ChosenMvsGetCmsWhenSecondaryAccessWins) {
  CoraddDesigner designer(context_, FastOptions());
  const DatabaseDesign d = designer.Design(*workload_, 16ull << 20);
  size_t total_cms = 0;
  for (const auto& obj : d.objects) total_cms += obj.cms.size();
  // With a fact re-clustering in the design, date/geography predicates need
  // CMs; expect at least one somewhere.
  bool has_recluster = false;
  for (const auto& obj : d.objects) {
    has_recluster |= obj.spec.is_fact_recluster && !obj.spec.is_base;
  }
  if (has_recluster) {
    EXPECT_GT(total_cms, 0u);
  }
}

TEST_F(CoreTest, NaiveProducesOnlyDedicatedAndReclusters) {
  NaiveDesigner naive(context_);
  const DatabaseDesign d = naive.Design(*workload_, 32ull << 20);
  for (const auto& obj : d.objects) {
    if (obj.spec.is_fact_recluster) continue;
    EXPECT_EQ(obj.spec.query_group.size(), 1u) << obj.spec.name;
  }
}

TEST_F(CoreTest, CommercialUsesBTreesNotCms) {
  CommercialDesigner commercial(context_);
  const DatabaseDesign d = commercial.Design(*workload_, 32ull << 20);
  for (const auto& obj : d.objects) {
    EXPECT_TRUE(obj.cms.empty()) << obj.spec.name;
  }
  EXPECT_LE(d.object_bytes, 32ull << 20);
}

TEST_F(CoreTest, EvaluatorCachesAcrossBudgets) {
  CoraddDesigner designer(context_, FastOptions());
  DesignEvaluator evaluator(context_);
  const DatabaseDesign d1 = designer.Design(*workload_, 8ull << 20);
  evaluator.Run(d1, *workload_, designer.model());
  const uint64_t hits_before = evaluator.cache_hits();
  evaluator.Run(d1, *workload_, designer.model());
  EXPECT_GT(evaluator.cache_hits(), hits_before);
}

TEST_F(CoreTest, RunManyMatchesSerialRunsAtAnyThreadCount) {
  // The parallel evaluator contract: RunMany over a sweep of jobs returns
  // exactly what per-job Run calls return, bit for bit, at any pool size.
  CoraddDesigner designer(context_, FastOptions());
  const DatabaseDesign d1 = designer.Design(*workload_, 4ull << 20);
  const DatabaseDesign d2 = designer.Design(*workload_, 16ull << 20);

  ThreadPool serial_pool(1);
  ExecOptions serial;
  serial.pool = &serial_pool;
  DesignEvaluator serial_eval(context_, /*cache_capacity=*/24, serial);
  const WorkloadRunResult want1 =
      serial_eval.Run(d1, *workload_, designer.model());
  const WorkloadRunResult want2 =
      serial_eval.Run(d2, *workload_, designer.model());

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ExecOptions eo;
    eo.pool = &pool;
    DesignEvaluator evaluator(context_, /*cache_capacity=*/24, eo);
    const std::vector<WorkloadRunResult> got = evaluator.RunMany(
        {EvalJob{&d1, workload_, &designer.model()},
         EvalJob{&d2, workload_, &designer.model()}});
    ASSERT_EQ(got.size(), 2u);
    for (size_t j = 0; j < 2; ++j) {
      const WorkloadRunResult& want = j == 0 ? want1 : want2;
      EXPECT_EQ(got[j].total_seconds, want.total_seconds) << threads;
      EXPECT_EQ(got[j].expected_seconds, want.expected_seconds);
      ASSERT_EQ(got[j].per_query.size(), want.per_query.size());
      for (size_t qi = 0; qi < want.per_query.size(); ++qi) {
        EXPECT_EQ(got[j].per_query[qi].aggregate,
                  want.per_query[qi].aggregate);
        EXPECT_EQ(got[j].per_query[qi].real_seconds,
                  want.per_query[qi].real_seconds);
        EXPECT_EQ(got[j].per_query[qi].rows_output,
                  want.per_query[qi].rows_output);
        EXPECT_EQ(got[j].per_query[qi].object_name,
                  want.per_query[qi].object_name);
      }
    }
  }
}

TEST_F(CoreTest, RealAndExpectedAgreeOnOrderOfMagnitude) {
  // CORADD-Model tracked reality well in Fig 9; at minimum the two must
  // agree within an order of magnitude on the total.
  CoraddDesigner designer(context_, FastOptions());
  DesignEvaluator evaluator(context_);
  const DatabaseDesign d = designer.Design(*workload_, 16ull << 20);
  const WorkloadRunResult run =
      evaluator.Run(d, *workload_, designer.model());
  EXPECT_GT(run.total_seconds, 0.0);
  EXPECT_GT(run.expected_seconds, 0.0);
  EXPECT_LT(run.total_seconds, run.expected_seconds * 10);
  EXPECT_GT(run.total_seconds, run.expected_seconds / 10);
}

TEST_F(CoreTest, DesignsDisableFeedbackStillValid) {
  CoraddOptions options = FastOptions();
  options.use_feedback = false;
  CoraddDesigner designer(context_, options);
  const DatabaseDesign d = designer.Design(*workload_, 8ull << 20);
  EXPECT_FALSE(d.objects.empty());
  EXPECT_LE(d.object_bytes, 8ull << 20);
}

namespace {
void ExpectDesignsIdentical(const DatabaseDesign& a, const DatabaseDesign& b) {
  EXPECT_EQ(a.designer, b.designer);
  EXPECT_EQ(a.expected_seconds, b.expected_seconds);  // bitwise
  EXPECT_EQ(a.object_bytes, b.object_bytes);
  EXPECT_EQ(a.object_for_query, b.object_for_query);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t o = 0; o < a.objects.size(); ++o) {
    EXPECT_EQ(a.objects[o].spec.name, b.objects[o].spec.name) << o;
    EXPECT_EQ(a.objects[o].spec.columns, b.objects[o].spec.columns) << o;
    EXPECT_EQ(a.objects[o].spec.clustered_key, b.objects[o].spec.clustered_key)
        << o;
    EXPECT_EQ(a.objects[o].btree_columns, b.objects[o].btree_columns) << o;
  }
}
}  // namespace

TEST_F(CoreTest, BaselineDesignsUnchangedByCandidateGenCache) {
  // Naive and Commercial route candidate generation through the context's
  // CandidateGenCache (fixing the duplicate-work bug where each budget cell
  // regenerated model-independent specs). A cache-hitting repeat call and a
  // designer on a fresh cold-cache context must select identical designs.
  const uint64_t budget = 8ull << 20;
  NaiveDesigner naive(context_);
  CommercialDesigner commercial(context_);
  const DatabaseDesign n1 = naive.Design(*workload_, budget);
  const DatabaseDesign c1 = commercial.Design(*workload_, budget);
  const uint64_t hits_before = context_->candgen_cache().stats().cache_hits;
  const DatabaseDesign n2 = naive.Design(*workload_, budget);
  const DatabaseDesign c2 = commercial.Design(*workload_, budget);
  EXPECT_GE(context_->candgen_cache().stats().cache_hits, hits_before + 2);
  ExpectDesignsIdentical(n1, n2);
  ExpectDesignsIdentical(c1, c2);

  StatsOptions sopt;
  sopt.sample_rows = 2048;
  sopt.disk.page_size_bytes = 1024;
  DesignContext cold(catalog_, *workload_, sopt);
  NaiveDesigner cold_naive(&cold);
  CommercialDesigner cold_commercial(&cold);
  EXPECT_EQ(cold.candgen_cache().stats().cache_hits, 0u);
  ExpectDesignsIdentical(n1, cold_naive.Design(*workload_, budget));
  ExpectDesignsIdentical(c1, cold_commercial.Design(*workload_, budget));
}

TEST_F(CoreTest, FeedbackNeverHurtsExpectedCost) {
  CoraddOptions with = FastOptions();
  CoraddOptions without = FastOptions();
  without.use_feedback = false;
  CoraddDesigner d_with(context_, with);
  CoraddDesigner d_without(context_, without);
  for (uint64_t budget : {2ull << 20, 16ull << 20}) {
    const double c_with = d_with.Design(*workload_, budget).expected_seconds;
    const double c_without =
        d_without.Design(*workload_, budget).expected_seconds;
    EXPECT_LE(c_with, c_without + 1e-9) << budget;
  }
}

}  // namespace
}  // namespace coradd
