// Tests for src/cm correlation maps (A-1): compression arithmetic, lookup
// completeness, bucketing trade-offs, and the CM designer's choices.
#include <gtest/gtest.h>

#include "cm/cm_designer.h"
#include "cm/correlation_map.h"
#include "common/rng.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

ColumnDef Int(const std::string& name, uint32_t bytes = 4) {
  ColumnDef c;
  c.name = name;
  c.byte_size = bytes;
  return c;
}

/// A People-like table (the A-1 example): city -> state functional.
/// Clustered on state; secondary attribute city.
std::unique_ptr<ClusteredTable> MakePeople(int rows, uint32_t page_size = 512) {
  auto t = std::make_unique<Table>(
      Schema({Int("state"), Int("city"), Int("salary")}), "people");
  Rng rng(31);
  for (int i = 0; i < rows; ++i) {
    const int64_t city = static_cast<int64_t>(rng.Uniform(50));
    t->AppendRow({city / 10, city, static_cast<int64_t>(rng.Uniform(100000))});
  }
  return std::make_unique<ClusteredTable>(std::move(t), std::vector<int>{0},
                                          page_size);
}

CorrelationMap BuildCm(const ClusteredTable& ct, int key_col,
                       CmBucketing bucketing = {}) {
  return CorrelationMap(
      {ct.table().schema().Column(static_cast<size_t>(key_col)).name},
      {&ct.table().ColumnData(static_cast<size_t>(key_col))},
      {ct.table().schema().Column(static_cast<size_t>(key_col)).byte_size},
      ct, bucketing);
}

// ---------- CorrelationMap structure ----------

TEST(CorrelationMapTest, DistinctToDistinctCompression) {
  auto ct = MakePeople(5000);
  const CorrelationMap cm = BuildCm(*ct, 1);
  // 50 cities, each mapping to the buckets of exactly one state: the CM has
  // one entry per city and far fewer pairs than rows.
  EXPECT_EQ(cm.NumKeyEntries(), 50u);
  EXPECT_LT(cm.NumPairs(), 5000u / 4);
}

TEST(CorrelationMapTest, SizeBytesMatchesPairArithmetic) {
  auto ct = MakePeople(5000);
  const CorrelationMap cm = BuildCm(*ct, 1);
  EXPECT_EQ(cm.SizeBytes(), cm.NumPairs() * (4u + 4u));
}

TEST(CorrelationMapTest, LookupCoversAllMatchingRows) {
  auto ct = MakePeople(5000);
  const CorrelationMap cm = BuildCm(*ct, 1);
  // For each city value, the returned buckets must cover every row with
  // that city (CMs may return a superset; never a subset).
  for (int64_t city = 0; city < 50; city += 7) {
    const auto buckets = cm.LookupBuckets(
        {[city](int64_t lo, int64_t hi) { return city >= lo && city <= hi; }});
    std::set<uint64_t> covered_pages;
    for (uint32_t b : buckets) {
      const PageRun run = cm.BucketPages(b, ct->NumPages());
      for (uint64_t p = run.first_page; p <= run.last_page; ++p) {
        covered_pages.insert(p);
      }
    }
    for (RowId r = 0; r < ct->NumRows(); ++r) {
      if (ct->table().Value(r, 1) == city) {
        EXPECT_TRUE(covered_pages.count(ct->PageOfRow(r)))
            << "city " << city << " row " << r;
      }
    }
  }
}

TEST(CorrelationMapTest, CorrelatedKeyYieldsFewBucketsPerValue) {
  auto ct = MakePeople(5000);
  const CorrelationMap cm = BuildCm(*ct, 1);
  // city determines state -> each city co-occurs with ~1/5 of the table's
  // buckets (one state's worth), not all of them.
  const uint64_t total_buckets =
      (ct->NumPages() + cm.bucketing().clustered_bucket_pages - 1) /
      cm.bucketing().clustered_bucket_pages;
  const auto buckets = cm.LookupBuckets(
      {[](int64_t lo, int64_t hi) { return 25 >= lo && 25 <= hi; }});
  EXPECT_LT(buckets.size(), total_buckets / 3);
}

TEST(CorrelationMapTest, UncorrelatedKeyTouchesMostBuckets) {
  auto ct = MakePeople(5000);
  const CorrelationMap cm = BuildCm(*ct, 2);  // salary: uncorrelated
  const auto buckets = cm.LookupBuckets(
      {[](int64_t lo, int64_t hi) { return lo <= 50000 && 40000 <= hi; }});
  const uint64_t total_buckets =
      (ct->NumPages() + cm.bucketing().clustered_bucket_pages - 1) /
      cm.bucketing().clustered_bucket_pages;
  EXPECT_GT(buckets.size(), total_buckets / 2);
}

TEST(CorrelationMapTest, KeyBucketingShrinksCm) {
  auto ct = MakePeople(5000);
  const CorrelationMap fine = BuildCm(*ct, 2, {1, 8});
  const CorrelationMap coarse = BuildCm(*ct, 2, {1024, 8});
  EXPECT_LT(coarse.NumKeyEntries(), fine.NumKeyEntries());
  EXPECT_LE(coarse.SizeBytes(), fine.SizeBytes());
}

TEST(CorrelationMapTest, BucketedLookupStillCovers) {
  auto ct = MakePeople(5000);
  const CorrelationMap cm = BuildCm(*ct, 2, {4096, 8});  // coarse salary CM
  const int64_t lo = 30000, hi = 31000;
  const auto buckets = cm.LookupBuckets(
      {[&](int64_t blo, int64_t bhi) { return lo <= bhi && blo <= hi; }});
  std::set<uint64_t> covered;
  for (uint32_t b : buckets) {
    const PageRun run = cm.BucketPages(b, ct->NumPages());
    for (uint64_t p = run.first_page; p <= run.last_page; ++p) covered.insert(p);
  }
  for (RowId r = 0; r < ct->NumRows(); ++r) {
    const int64_t v = ct->table().Value(r, 2);
    if (v >= lo && v <= hi) {
      EXPECT_TRUE(covered.count(ct->PageOfRow(r)));
    }
  }
}

TEST(CorrelationMapTest, CompositeKeyLookup) {
  auto ct = MakePeople(3000);
  const CorrelationMap cm(
      {"city", "salary"},
      {&ct->table().ColumnData(1), &ct->table().ColumnData(2)}, {4, 4}, *ct,
      CmBucketing{1024, 8});
  const auto buckets = cm.LookupBuckets(
      {[](int64_t lo, int64_t hi) { return 12 >= lo && 12 <= hi; },
       [](int64_t, int64_t) { return true; }});
  EXPECT_FALSE(buckets.empty());
}

TEST(CorrelationMapTest, BucketPagesClampedToTable) {
  auto ct = MakePeople(100);
  const CorrelationMap cm = BuildCm(*ct, 1);
  const uint64_t pages = ct->NumPages();
  const PageRun last = cm.BucketPages(
      static_cast<uint32_t>((pages - 1) / cm.bucketing().clustered_bucket_pages),
      pages);
  EXPECT_LE(last.last_page, pages - 1);
}

// ---------- CM designer on SSB ----------

class CmDesignerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.005;
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    sopt.disk.page_size_bytes = 1024;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    model_ = new CorrelationCostModel(registry_);
    workload_ = new Workload(ssb::MakeWorkload());
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete model_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  static MvSpec FactRecluster(std::vector<std::string> key) {
    MvSpec spec;
    spec.name = "recluster";
    spec.fact_table = "lineorder";
    for (size_t c = 0; c < universe_->fact_table().schema().NumColumns(); ++c) {
      spec.columns.push_back(universe_->fact_table().schema().Column(c).name);
    }
    spec.clustered_key = std::move(key);
    spec.is_fact_recluster = true;
    return spec;
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static CorrelationCostModel* model_;
  static Workload* workload_;
};

Catalog* CmDesignerTest::catalog_ = nullptr;
Universe* CmDesignerTest::universe_ = nullptr;
UniverseStats* CmDesignerTest::stats_ = nullptr;
StatsRegistry* CmDesignerTest::registry_ = nullptr;
CorrelationCostModel* CmDesignerTest::model_ = nullptr;
Workload* CmDesignerTest::workload_ = nullptr;

TEST_F(CmDesignerTest, DesignsCmForDatePredicateOnOrderdateClustering) {
  CmDesigner designer(registry_, model_);
  const MvSpec spec = FactRecluster({"lo_orderdate"});
  std::vector<const Query*> queries;
  for (const auto& q : workload_->queries) queries.push_back(&q);
  const auto cms = designer.Design(spec, queries);
  // At least one CM keyed on a date-dimension attribute must be chosen:
  // that is the §4.3 mechanism for serving date predicates.
  bool has_date_cm = false;
  for (const auto& cm : cms) {
    for (const auto& col : cm.key_columns) {
      if (col.rfind("d_", 0) == 0) has_date_cm = true;
    }
    EXPECT_LE(cm.est_size_bytes, (1u << 20)) << cm.ToString();
  }
  EXPECT_TRUE(has_date_cm);
}

TEST_F(CmDesignerTest, DeduplicatesAcrossQueries) {
  CmDesigner designer(registry_, model_);
  const MvSpec spec = FactRecluster({"lo_orderdate"});
  // Q1.1 and a synthetic twin: same predicates -> same winning CM key set.
  Query twin = workload_->queries[0];
  twin.id = "Q1.1twin";
  const std::vector<const Query*> queries = {&workload_->queries[0], &twin};
  const auto cms = designer.Design(spec, queries);
  std::set<std::vector<std::string>> keys;
  for (const auto& cm : cms) keys.insert(cm.key_columns);
  EXPECT_EQ(keys.size(), cms.size());
}

TEST_F(CmDesignerTest, NoCmWhenClusteredIndexWins) {
  CmDesigner designer(registry_, model_);
  // Dedicated MV for Q1.1: clustered scan is optimal, no CM needed.
  MvSpec spec;
  spec.name = "dedicated";
  spec.fact_table = "lineorder";
  spec.columns = {"d_year", "lo_discount", "lo_quantity", "lo_extendedprice"};
  spec.clustered_key = {"d_year", "lo_discount", "lo_quantity"};
  const auto cms = designer.Design(spec, {&workload_->queries[0]});
  EXPECT_TRUE(cms.empty());
}

TEST_F(CmDesignerTest, SizeEstimateTracksActual) {
  CmDesigner designer(registry_, model_);
  const MvSpec spec = FactRecluster({"lo_orderdate"});
  const CmBucketing bucketing{1, 8};
  const uint64_t est = designer.EstimateCmSize(spec, {"d_year"}, bucketing);

  // Materialize the actual CM and compare.
  auto projected = universe_->MaterializeProjection(
      [&] {
        std::vector<int> cols;
        for (const auto& c : spec.columns) {
          cols.push_back(universe_->ColumnIndex(c));
        }
        return cols;
      }(),
      "fact_copy");
  std::vector<int> key_cols{projected->schema().ColumnIndex("lo_orderdate")};
  ClusteredTable ct(std::move(projected), key_cols,
                    stats_->options().disk.page_size_bytes);
  std::vector<int64_t> d_year(ct.NumRows());
  const int od = ct.table().schema().ColumnIndex("lo_orderdate");
  for (RowId r = 0; r < ct.NumRows(); ++r) {
    d_year[r] = ct.table().Value(r, static_cast<size_t>(od)) / 10000;
  }
  const CorrelationMap cm({"d_year"}, {&d_year}, {4}, ct, bucketing);
  EXPECT_GT(est, 0u);
  EXPECT_LT(est, cm.SizeBytes() * 8 + 4096);
  EXPECT_GT(est * 8 + 4096, cm.SizeBytes());
}

}  // namespace
}  // namespace coradd
