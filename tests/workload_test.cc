// Tests for src/workload: predicate matching (equality/range/IN), query
// column bookkeeping, and ToString rendering.
#include <gtest/gtest.h>

#include "ssb/ssb.h"
#include "workload/query.h"

namespace coradd {
namespace {

// ---------- Predicate ----------

TEST(PredicateTest, EqualityMatches) {
  const Predicate p = Predicate::Eq("a", 5);
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(6));
  EXPECT_EQ(p.ToString(), "a = 5");
}

TEST(PredicateTest, RangeMatchesInclusive) {
  const Predicate p = Predicate::Range("a", 2, 4);
  EXPECT_FALSE(p.Matches(1));
  EXPECT_TRUE(p.Matches(2));
  EXPECT_TRUE(p.Matches(4));
  EXPECT_FALSE(p.Matches(5));
}

TEST(PredicateTest, InSortsAndDeduplicates) {
  const Predicate p = Predicate::In("a", {5, 1, 5, 3});
  EXPECT_EQ(p.in_values.size(), 3u);
  EXPECT_TRUE(p.Matches(1));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(2));
}

TEST(PredicateTest, ToStringForms) {
  EXPECT_EQ(Predicate::Range("x", 1, 9).ToString(), "1 <= x <= 9");
  EXPECT_EQ(Predicate::In("x", {2, 1}).ToString(), "x IN {1,2}");
}

// ---------- Query column sets ----------

TEST(QueryTest, PredicateColumnsDeduplicated) {
  Query q;
  q.predicates = {Predicate::Eq("a", 1), Predicate::Range("b", 0, 9),
                  Predicate::Eq("a", 2)};
  const auto cols = q.PredicateColumns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "a");
  EXPECT_EQ(cols[1], "b");
}

TEST(QueryTest, TargetColumnsExcludePredicated) {
  Query q;
  q.predicates = {Predicate::Eq("a", 1)};
  q.group_by = {"a", "g"};
  q.aggregates = {{"m1", "m2"}, {"m1", ""}};
  const auto targets = q.TargetColumns();
  ASSERT_EQ(targets.size(), 3u);  // g, m1, m2 (a is predicated)
  EXPECT_EQ(targets[0], "g");
  EXPECT_EQ(targets[1], "m1");
  EXPECT_EQ(targets[2], "m2");
}

TEST(QueryTest, AllColumnsIsUnion) {
  Query q;
  q.predicates = {Predicate::Eq("a", 1)};
  q.group_by = {"g"};
  q.aggregates = {{"m", ""}};
  const auto all = q.AllColumns();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "a");
}

TEST(QueryTest, ToStringMentionsEverything) {
  Query q;
  q.id = "Q9";
  q.fact_table = "f";
  q.predicates = {Predicate::Eq("a", 1)};
  q.group_by = {"g"};
  q.aggregates = {{"m", "n"}};
  const std::string s = q.ToString();
  EXPECT_NE(s.find("Q9"), std::string::npos);
  EXPECT_NE(s.find("SUM(m*n)"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY g"), std::string::npos);
}

// ---------- Workload ----------

TEST(WorkloadTest, QueriesForFactFilters) {
  Workload w;
  Query q1;
  q1.id = "a";
  q1.fact_table = "f1";
  Query q2;
  q2.id = "b";
  q2.fact_table = "f2";
  w.queries = {q1, q2, q1};
  EXPECT_EQ(w.QueriesForFact("f1").size(), 2u);
  EXPECT_EQ(w.QueriesForFact("f2").size(), 1u);
  EXPECT_EQ(w.QueriesForFact("f3").size(), 0u);
}

TEST(WorkloadTest, FactTablesFirstAppearanceOrder) {
  Workload w;
  Query q1;
  q1.fact_table = "beta";
  Query q2;
  q2.fact_table = "alpha";
  w.queries = {q1, q2, q1};
  const auto facts = w.FactTables();
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts[0], "beta");
  EXPECT_EQ(facts[1], "alpha");
}

// ---------- Selectivity estimation vs exact (property) ----------

class SelectivityAccuracyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    options.scale_factor = 0.002;
    catalog_ = ssb::MakeCatalog(options).release();
    const FactTableInfo* info = catalog_->GetFactInfo("lineorder");
    universe_ = new Universe(*catalog_, *info);
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    stats_ = new UniverseStats(universe_, sopt);
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete universe_;
    delete catalog_;
  }
  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
};

Catalog* SelectivityAccuracyTest::catalog_ = nullptr;
Universe* SelectivityAccuracyTest::universe_ = nullptr;
UniverseStats* SelectivityAccuracyTest::stats_ = nullptr;

TEST_F(SelectivityAccuracyTest, EstimatesTrackExactForSsbPredicates) {
  const std::vector<Predicate> preds = {
      Predicate::Eq("d_year", 1993),
      Predicate::Range("lo_discount", 1, 3),
      Predicate::Range("lo_quantity", 1, 24),
      Predicate::Eq("d_yearmonthnum", ssb::YearMonthNum(1994, 1)),
      Predicate::Eq("s_region", ssb::RegionCode("ASIA")),
      Predicate::In("d_year", {1997, 1998}),
  };
  for (const auto& p : preds) {
    const double est = EstimateSelectivity(p, *stats_);
    const double exact = ExactSelectivity(p, *universe_);
    EXPECT_NEAR(est, exact, std::max(0.02, exact * 0.5)) << p.ToString();
  }
}

TEST_F(SelectivityAccuracyTest, EveryWorkloadPredicateEstimable) {
  for (const auto& q : ssb::MakeWorkload().queries) {
    for (const auto& p : q.predicates) {
      const double est = EstimateSelectivity(p, *stats_);
      EXPECT_GE(est, 0.0) << q.id << " " << p.ToString();
      EXPECT_LE(est, 1.0) << q.id << " " << p.ToString();
    }
  }
}

}  // namespace
}  // namespace coradd
