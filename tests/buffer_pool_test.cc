// Tests for the concurrent sharded buffer pool (storage/buffer_pool.h):
// property tests replaying SharedBufferPool against the serial LRU reference
// model, scan resistance of the two-segment policy, pin semantics, accounting
// invariants, capacity edges, and an 8-thread mixed stress hammer.
//
// Naming convention: cheap deterministic cases are `BufferPoolTest.*` (smoke
// label); the multi-threaded hammer lives in `BufferPoolStressTest.*` so the
// smoke filter can exclude it while the full suite and the TSan CI job run it.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"

namespace coradd {
namespace {

// ---------- PageKeyHash / striping ----------

TEST(BufferPoolTest, HashSpreadsConsecutivePagesAcrossShards) {
  BufferPoolOptions opt;
  opt.capacity_pages = 64;
  opt.num_shards = 8;
  SharedBufferPool pool(opt);
  ASSERT_EQ(pool.num_shards(), 8u);

  // Consecutive pages of one object — the dominant access pattern (scans) —
  // must stripe near-uniformly. The old `page_no * 1000003 + object_id` hash
  // sent consecutive pages to shards `1000003 mod 8 = 3` apart (period-8
  // cycling through a fixed residue pattern) and small object ids barely
  // moved the low bits.
  constexpr uint64_t kPages = 8000;
  std::vector<uint64_t> per_shard(8, 0);
  for (uint64_t p = 0; p < kPages; ++p) {
    ++per_shard[pool.ShardOf(PageKey{1, p})];
  }
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_GT(per_shard[s], kPages / 8 - 300) << "shard " << s;
    EXPECT_LT(per_shard[s], kPages / 8 + 300) << "shard " << s;
  }

  // Object id must perturb the hash: same page number, different objects.
  const PageKeyHash h;
  EXPECT_NE(h(PageKey{1, 0}), h(PageKey{2, 0}));
  EXPECT_NE(h(PageKey{1, 7}), h(PageKey{1 | kIndexPageObjectFlag, 7}));
}

// ---------- Property: single-shard kLru replays the serial reference ----------

TEST(BufferPoolTest, SingleShardLruMatchesSerialReferenceModel) {
  // Random mixed read/write sequence over a key space 4x the capacity; the
  // serial BufferPool is the reference model. Per-operation hit/miss must
  // agree, and so must the final counters and the number of dirty pages
  // written back (exactly-once: reference disk writes == shared write-back
  // disk writes == dirty_writebacks).
  constexpr uint64_t kCapacity = 32;
  constexpr int kOps = 20000;

  DiskModel ref_disk;
  BufferPool ref(kCapacity, &ref_disk);

  DiskModel shared_disk;
  BufferPoolOptions opt;
  opt.capacity_pages = kCapacity;
  opt.num_shards = 1;
  opt.policy = EvictionPolicy::kLru;
  opt.name = "lru_ref";
  SharedBufferPool pool(opt, &shared_disk);

  Rng rng(42);
  for (int i = 0; i < kOps; ++i) {
    const PageKey key{static_cast<uint32_t>(1 + rng.Uniform(3)),
                      rng.Uniform(4 * kCapacity)};
    if (rng.Bernoulli(0.3)) {
      EXPECT_EQ(ref.Write(key), pool.Write(key)) << "op " << i;
    } else {
      EXPECT_EQ(ref.Read(key), pool.Read(key)) << "op " << i;
    }
  }

  const BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits, ref.hits());
  EXPECT_EQ(s.misses, ref.misses());
  EXPECT_EQ(s.touches, s.hits + s.misses);
  EXPECT_EQ(s.resident, ref.resident_pages());
  EXPECT_EQ(pool.resident_pages(), kCapacity);

  // Same victims in the same order implies the same dirty pages went out.
  EXPECT_EQ(shared_disk.pages_written(), ref_disk.pages_written());
  ref.FlushAll();
  pool.FlushAll();
  EXPECT_EQ(shared_disk.pages_written(), ref_disk.pages_written());
  EXPECT_EQ(pool.stats().dirty_writebacks, shared_disk.pages_written());
  // Flushed pages stay resident and clean: a second flush writes nothing.
  pool.FlushAll();
  EXPECT_EQ(shared_disk.pages_written(), ref_disk.pages_written());
}

// ---------- Scan resistance (kTwoQ) ----------

TEST(BufferPoolTest, TwoQHotSetSurvivesGiantScanLruDoesNot) {
  constexpr uint64_t kCapacity = 64;
  constexpr uint64_t kHot = 8;
  const auto run = [](EvictionPolicy policy) {
    BufferPoolOptions opt;
    opt.capacity_pages = kCapacity;
    opt.num_shards = 1;
    opt.policy = policy;
    SharedBufferPool pool(opt);
    // Warm the hot set: first touch admits, second touch promotes it into
    // the protected segment (kTwoQ) / refreshes recency (kLru).
    for (int round = 0; round < 2; ++round) {
      for (uint64_t p = 0; p < kHot; ++p) pool.Read(PageKey{1, p});
    }
    // One giant single-touch scan of a different object.
    for (uint64_t p = 0; p < 10000; ++p) pool.Read(PageKey{2, p});
    // Re-touch the hot set and count hits.
    uint64_t hits = 0;
    for (uint64_t p = 0; p < kHot; ++p) {
      if (pool.Read(PageKey{1, p})) ++hits;
    }
    return hits;
  };
  // The probation FIFO recycles the scan's own pages; the protected segment
  // is untouched. Exact LRU flushes everything.
  EXPECT_EQ(run(EvictionPolicy::kTwoQ), kHot);
  EXPECT_EQ(run(EvictionPolicy::kLru), 0u);
}

// ---------- Pins ----------

TEST(BufferPoolTest, PinnedPagesNeverEvictedAndOverCapacityIsTransient) {
  BufferPoolOptions opt;
  opt.capacity_pages = 4;
  opt.num_shards = 1;
  SharedBufferPool pool(opt);

  for (uint64_t p = 0; p < 4; ++p) pool.Pin(PageKey{1, p});
  EXPECT_EQ(pool.pinned_pages(), 4u);

  // Every frame is pinned: an unpinned admission is the only eviction
  // candidate, so it bounces straight back out and the pinned set survives.
  for (uint64_t p = 100; p < 103; ++p) pool.Read(PageKey{1, p});
  EXPECT_EQ(pool.resident_pages(), 4u);
  for (uint64_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(pool.Read(PageKey{1, p})) << "pinned page " << p << " evicted";
  }

  // Pinned admissions cannot be evicted either: the pool runs transiently
  // over capacity until the pins are released.
  for (uint64_t p = 100; p < 103; ++p) pool.Pin(PageKey{1, p});
  EXPECT_EQ(pool.resident_pages(), 7u);
  EXPECT_EQ(pool.pinned_pages(), 7u);

  // Releasing the pins drains the excess back to capacity.
  for (uint64_t p = 100; p < 103; ++p) pool.Unpin(PageKey{1, p});
  for (uint64_t p = 0; p < 4; ++p) pool.Unpin(PageKey{1, p});
  EXPECT_EQ(pool.pinned_pages(), 0u);
  EXPECT_EQ(pool.resident_pages(), 4u);

  const BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.pin_high_water, 7u);
  EXPECT_EQ(s.pinned, 0u);
}

TEST(BufferPoolTest, PinsNestAsAReferenceCount) {
  BufferPoolOptions opt;
  opt.capacity_pages = 2;
  opt.num_shards = 1;
  SharedBufferPool pool(opt);

  const PageKey key{1, 0};
  pool.Pin(key);
  pool.Pin(key);  // Nested pin of the same page: still one pinned page.
  EXPECT_EQ(pool.pinned_pages(), 1u);
  pool.Unpin(key);
  EXPECT_EQ(pool.pinned_pages(), 1u);  // One pin still outstanding.
  // Fill + overflow: the page must survive while any pin remains.
  pool.Read(PageKey{1, 10});
  pool.Read(PageKey{1, 11});
  pool.Read(PageKey{1, 12});
  EXPECT_TRUE(pool.Read(key));
  pool.Unpin(key);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  EXPECT_LE(pool.resident_pages(), 2u);
}

// ---------- Capacity edges ----------

TEST(BufferPoolTest, CapacityOneAlternatingKeysAlwaysMisses) {
  BufferPoolOptions opt;
  opt.capacity_pages = 1;
  opt.policy = EvictionPolicy::kTwoQ;
  SharedBufferPool pool(opt);
  ASSERT_EQ(pool.num_shards(), 1u);  // auto = min(8, capacity).

  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(pool.Read(PageKey{1, 0}));
    EXPECT_FALSE(pool.Read(PageKey{1, 1}));
  }
  const BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 20u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.evictions, 19u);
  EXPECT_EQ(s.resident, 1u);
  // Re-reading the resident page is a hit even at capacity 1.
  EXPECT_TRUE(pool.Read(PageKey{1, 1}));
}

TEST(BufferPoolTest, ShardCountClampedToCapacity) {
  BufferPoolOptions opt;
  opt.capacity_pages = 3;
  opt.num_shards = 16;  // More shards than pages would leave empty shards.
  SharedBufferPool pool(opt);
  EXPECT_EQ(pool.num_shards(), 3u);
  EXPECT_EQ(pool.capacity_pages(), 3u);
}

// ---------- Accounting invariants ----------

TEST(BufferPoolTest, AccountingInvariantsUnderRandomMix) {
  DiskModel disk;
  BufferPoolOptions opt;
  opt.capacity_pages = 48;
  opt.num_shards = 4;
  SharedBufferPool pool(opt, &disk);

  Rng rng(7);
  uint64_t ops = 0;
  for (int i = 0; i < 30000; ++i, ++ops) {
    const PageKey key{static_cast<uint32_t>(1 + rng.Uniform(2)),
                      rng.Uniform(256)};
    const double r = rng.UniformDouble();
    if (r < 0.25) {
      pool.Write(key);
    } else if (r < 0.30) {
      pool.Pin(key);
      pool.Unpin(key);
    } else {
      pool.Read(key);
    }
  }

  const BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.touches, ops);
  EXPECT_EQ(s.hits + s.misses, s.touches);
  EXPECT_EQ(s.resident, s.misses - s.evictions);
  EXPECT_EQ(s.resident, pool.resident_pages());
  EXPECT_LE(s.resident, pool.capacity_pages());
  EXPECT_EQ(s.pinned, 0u);
  EXPECT_LE(s.resident_dirty, s.resident);

  // The aggregate is exactly the sum of the shards.
  BufferPoolStats sum;
  for (size_t i = 0; i < pool.num_shards(); ++i) {
    const BufferPoolStats ss = pool.shard_stats(i);
    sum.touches += ss.touches;
    sum.hits += ss.hits;
    sum.misses += ss.misses;
    sum.evictions += ss.evictions;
    sum.dirty_writebacks += ss.dirty_writebacks;
    sum.resident += ss.resident;
  }
  EXPECT_EQ(sum.touches, s.touches);
  EXPECT_EQ(sum.hits, s.hits);
  EXPECT_EQ(sum.misses, s.misses);
  EXPECT_EQ(sum.evictions, s.evictions);
  EXPECT_EQ(sum.dirty_writebacks, s.dirty_writebacks);
  EXPECT_EQ(sum.resident, s.resident);

  // Exactly-once write-back: every dirty write-back charged one WritePage.
  EXPECT_EQ(disk.pages_written(), s.dirty_writebacks);
  pool.FlushAll();
  const BufferPoolStats f = pool.stats();
  EXPECT_EQ(f.resident_dirty, 0u);
  EXPECT_EQ(disk.pages_written(), f.dirty_writebacks);
}

TEST(BufferPoolTest, DropAllResetsDirtyAndPinAccounting) {
  DiskModel disk;
  BufferPoolOptions opt;
  opt.capacity_pages = 16;
  opt.num_shards = 2;
  SharedBufferPool pool(opt, &disk);

  for (uint64_t p = 0; p < 8; ++p) pool.Write(PageKey{1, p});
  pool.Pin(PageKey{1, 0});
  pool.Pin(PageKey{1, 1});
  const BufferPoolStats before = pool.stats();
  EXPECT_EQ(before.resident_dirty, 8u);
  EXPECT_EQ(before.pinned, 2u);

  pool.DropAll();
  const BufferPoolStats after = pool.stats();
  EXPECT_EQ(after.resident, 0u);
  EXPECT_EQ(after.resident_dirty, 0u);
  EXPECT_EQ(after.pinned, 0u);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  // Dirty state went with the frames: flushing now writes nothing.
  pool.FlushAll();
  EXPECT_EQ(disk.pages_written(), 0u);
  // Monotone counters survive the drop; reuse starts cold.
  EXPECT_EQ(after.touches, before.touches);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_FALSE(pool.Read(PageKey{1, 0}));
}

// Serial reference model: DropAll drops dirty state with the frames, so a
// flush right after a drop writes nothing and reuse starts cold.
TEST(BufferPoolTest, SerialDropAllDropsDirtyState) {
  DiskModel disk;
  BufferPool pool(8, &disk);
  for (uint64_t p = 0; p < 4; ++p) pool.Write(PageKey{1, p});
  pool.DropAll();
  EXPECT_EQ(pool.resident_pages(), 0u);
  const uint64_t written_before = disk.pages_written();
  pool.FlushAll();
  EXPECT_EQ(disk.pages_written(), written_before);
  // Reads after the drop are cold again.
  EXPECT_FALSE(pool.Read(PageKey{1, 0}));
}

// ---------- 8-thread mixed stress ----------

TEST(BufferPoolStressTest, EightThreadMixedHammerKeepsInvariants) {
  DiskModel disk;
  BufferPoolOptions opt;
  opt.capacity_pages = 256;
  opt.num_shards = 8;
  opt.name = "stress";
  SharedBufferPool pool(opt, &disk);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      std::vector<PageKey> pinned;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const PageKey key{static_cast<uint32_t>(1 + rng.Uniform(4)),
                          rng.Uniform(1024)};
        const double r = rng.UniformDouble();
        if (r < 0.30) {
          pool.Write(key);
        } else if (r < 0.40) {
          pool.Pin(key);
          pinned.push_back(key);
          if (pinned.size() > 4) {  // Bounded pin window per thread.
            pool.Unpin(pinned.front());
            pinned.erase(pinned.begin());
          }
        } else {
          pool.Read(key);
        }
      }
      for (const PageKey& key : pinned) pool.Unpin(key);
    });
  }
  for (std::thread& th : threads) th.join();

  const BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.touches, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(s.hits + s.misses, s.touches);
  EXPECT_EQ(s.resident, s.misses - s.evictions);
  EXPECT_EQ(s.pinned, 0u);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  // All pins released: residency is back within capacity.
  EXPECT_LE(pool.resident_pages(), pool.capacity_pages());
  EXPECT_LE(s.pin_high_water, static_cast<uint64_t>(kThreads) * 5);

  // Exactly-once dirty write-back under concurrency: no lost and no double
  // charges — the write-back disk saw one WritePage per recorded write-back,
  // before and after the final flush.
  EXPECT_EQ(disk.pages_written(), s.dirty_writebacks);
  pool.FlushAll();
  const BufferPoolStats f = pool.stats();
  EXPECT_EQ(f.resident_dirty, 0u);
  EXPECT_EQ(disk.pages_written(), f.dirty_writebacks);
}

}  // namespace
}  // namespace coradd
