// Tests for src/discovery: the thread pool, the lattice-based dependency
// miner (planted exact FDs, planted AFDs at known g3 violation rates, arity
// caps, key/constant handling, minimality), thread-count determinism, the
// SSB date-hierarchy discoveries the paper exploits, and the end-to-end
// check that a designer wired to mined correlations lands within 10% of the
// seeded-synopsis design.
#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/coradd_designer.h"
#include "core/evaluator.h"
#include "discovery/fd_miner.h"
#include "common/thread_pool.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) pool.Submit([&] { done.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 64);
  // The pool is reusable after a drain.
  pool.ParallelFor(8, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 72);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRuns) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

// ---------- Miner fixtures ----------

/// a = i % 50, b = a / 10 (a -> b exact), extra = i % 20 — low-cardinality
/// and independent of a/b, so pairs like {a, extra} really enter the
/// level-2 lattice (a near-unique column would be excluded as a near-key
/// and make the minimality assertions vacuous).
MinerInput PlantedInput(size_t n) {
  MinerInput input;
  input.column_names = {"a", "b", "extra"};
  input.columns.resize(3);
  for (size_t i = 0; i < n; ++i) {
    const int64_t a = static_cast<int64_t>(i % 50);
    input.columns[0].push_back(a);
    input.columns[1].push_back(a / 10);
    input.columns[2].push_back(static_cast<int64_t>(i % 20));
  }
  input.source_rows = n;
  return input;
}

int Col(const DiscoveredDependencies& d, const char* name) {
  const int c = d.ColumnIndex(name);
  EXPECT_GE(c, 0) << name;
  return c;
}

// ---------- Exact FDs ----------

TEST(DependencyMinerTest, FindsPlantedExactFd) {
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 2;
  const DiscoveredDependencies report =
      DependencyMiner(opt).Mine(PlantedInput(2000));

  const int a = Col(report, "a");
  const int b = Col(report, "b");
  const FunctionalDependency* fd = report.FindFd({a}, b);
  ASSERT_NE(fd, nullptr);
  EXPECT_TRUE(fd->exact());
  EXPECT_TRUE(report.DeterminesExactly({a}, b));
  // b has 5 values, a has 50: the reverse direction is soft, not exact.
  EXPECT_EQ(report.FindFd({b}, a), nullptr);
  EXPECT_FALSE(report.DeterminesExactly({b}, a));
  // strength(b -> a) = 5 / 50.
  EXPECT_NEAR(report.StrengthFor({b}, {a}), 0.1, 1e-12);
  EXPECT_NEAR(report.StrengthFor({a}, {b}), 1.0, 1e-12);
}

TEST(DependencyMinerTest, MinimalityPrunesSupersetLhs) {
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 2;
  const DiscoveredDependencies report =
      DependencyMiner(opt).Mine(PlantedInput(2000));
  const int a = Col(report, "a");
  const int b = Col(report, "b");
  const int extra = Col(report, "extra");
  // The pair {a, extra} is an active level-2 candidate (both columns are
  // low-cardinality), and {a, extra} -> b holds — but it is not minimal,
  // so only {a} -> b is reported.
  EXPECT_NE(report.StatsForSet({a, extra}), nullptr);
  EXPECT_EQ(report.FindFd({a, extra}, b), nullptr);
  ASSERT_NE(report.FindFd({a}, b), nullptr);
  // DeterminesExactly still answers supersets via the minimal FD.
  EXPECT_TRUE(report.DeterminesExactly({a, extra}, b));
}

// ---------- Approximate FDs at planted violation rates ----------

/// lhs = i % 100; rhs = lhs, except one row in each of `violating_groups`
/// distinct groups is flipped to a fresh outlier value. The g3 error is
/// exactly violating_groups / n.
MinerInput AfdInput(size_t n, size_t violating_groups) {
  MinerInput input;
  input.column_names = {"lhs", "rhs"};
  input.columns.resize(2);
  for (size_t i = 0; i < n; ++i) {
    const int64_t g = static_cast<int64_t>(i % 100);
    input.columns[0].push_back(g);
    int64_t r = g;
    // Row i == g flips group g (each group has n/100 >= 2 rows, so the
    // majority value stays g and the flip costs exactly one row).
    if (i < violating_groups && i == static_cast<size_t>(g)) {
      r = 1000 + static_cast<int64_t>(i);  // outlier
    }
    input.columns[1].push_back(r);
  }
  input.source_rows = n;
  return input;
}

TEST(DependencyMinerTest, ReportsAfdErrorWithinTolerance) {
  const size_t n = 2000;
  const size_t violations = 40;  // g3 = 0.02
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 1;
  opt.afd_error_threshold = 0.05;
  const DiscoveredDependencies report =
      DependencyMiner(opt).Mine(AfdInput(n, violations));

  const int lhs = Col(report, "lhs");
  const int rhs = Col(report, "rhs");
  const FunctionalDependency* fd = report.FindFd({lhs}, rhs);
  ASSERT_NE(fd, nullptr);
  EXPECT_FALSE(fd->exact());
  EXPECT_NEAR(fd->error, static_cast<double>(violations) / n, 1e-12);
}

TEST(DependencyMinerTest, AfdAboveThresholdNotReported) {
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 1;
  opt.afd_error_threshold = 0.01;  // planted error is 0.02
  const DiscoveredDependencies report =
      DependencyMiner(opt).Mine(AfdInput(2000, 40));
  EXPECT_EQ(report.FindFd({Col(report, "lhs")}, Col(report, "rhs")), nullptr);
}

// ---------- Arity cap ----------

/// c3 = (c1 + c2) % 10: only the pair {c1, c2} determines c3.
MinerInput PairDeterminedInput(size_t n) {
  MinerInput input;
  input.column_names = {"c1", "c2", "c3"};
  input.columns.resize(3);
  for (size_t i = 0; i < n; ++i) {
    const int64_t c1 = static_cast<int64_t>(i % 10);
    const int64_t c2 = static_cast<int64_t>((i / 10) % 10);
    input.columns[0].push_back(c1);
    input.columns[1].push_back(c2);
    input.columns[2].push_back((c1 + c2) % 10);
  }
  input.source_rows = n;
  return input;
}

TEST(DependencyMinerTest, ArityCapBoundsLhsSize) {
  DependencyMinerOptions opt;
  opt.afd_error_threshold = 0.0;
  opt.max_lhs_arity = 1;
  const DiscoveredDependencies capped =
      DependencyMiner(opt).Mine(PairDeterminedInput(1000));
  const int c1 = Col(capped, "c1");
  const int c2 = Col(capped, "c2");
  const int c3 = Col(capped, "c3");
  EXPECT_EQ(capped.FindFd({c1, c2}, c3), nullptr);
  for (const auto& fd : capped.fds()) EXPECT_EQ(fd.lhs.size(), 1u);

  opt.max_lhs_arity = 2;
  const DiscoveredDependencies full =
      DependencyMiner(opt).Mine(PairDeterminedInput(1000));
  const FunctionalDependency* fd = full.FindFd({c1, c2}, c3);
  ASSERT_NE(fd, nullptr);
  EXPECT_TRUE(fd->exact());
  // Neither singleton determines c3.
  EXPECT_EQ(full.FindFd({c1}, c3), nullptr);
  EXPECT_EQ(full.FindFd({c2}, c3), nullptr);
}

// ---------- Keys, constants, soft correlations ----------

TEST(DependencyMinerTest, KeysAndConstantsAreFactsNotFdSpam) {
  MinerInput input;
  input.column_names = {"id", "konst", "val"};
  input.columns.resize(3);
  for (size_t i = 0; i < 500; ++i) {
    input.columns[0].push_back(static_cast<int64_t>(i));  // unique
    input.columns[1].push_back(7);                        // constant
    input.columns[2].push_back(static_cast<int64_t>(i % 20));
  }
  input.source_rows = 500;
  const DiscoveredDependencies report = DependencyMiner().Mine(input);

  const int id = Col(report, "id");
  const int konst = Col(report, "konst");
  ASSERT_EQ(report.keys().size(), 1u);
  EXPECT_EQ(report.keys()[0], std::vector<int>{id});
  ASSERT_EQ(report.constant_columns().size(), 1u);
  EXPECT_EQ(report.constant_columns()[0], konst);
  // No FD mentions the key or the constant on either side.
  for (const auto& fd : report.fds()) {
    EXPECT_NE(fd.rhs, id);
    EXPECT_NE(fd.rhs, konst);
    for (int c : fd.lhs) {
      EXPECT_NE(c, id);
      EXPECT_NE(c, konst);
    }
  }
  // But both still answer determination queries.
  EXPECT_TRUE(report.DeterminesExactly({id}, Col(report, "val")));
  EXPECT_TRUE(report.DeterminesExactly({Col(report, "val")}, konst));
}

TEST(DependencyMinerTest, SoftCorrelationStrengths) {
  // a has 100 values, b = a / 2 has 50: strength(b -> a) = 0.5 exactly,
  // and a -> b is an exact FD (so not a soft pair).
  MinerInput input;
  input.column_names = {"a", "b"};
  input.columns.resize(2);
  for (size_t i = 0; i < 4000; ++i) {
    const int64_t a = static_cast<int64_t>(i % 100);
    input.columns[0].push_back(a);
    input.columns[1].push_back(a / 2);
  }
  input.source_rows = 4000;
  DependencyMinerOptions opt;
  opt.min_soft_strength = 0.25;
  const DiscoveredDependencies report = DependencyMiner(opt).Mine(input);

  const int a = Col(report, "a");
  const int b = Col(report, "b");
  bool found = false;
  for (const auto& s : report.soft_correlations()) {
    EXPECT_FALSE(s.from == a && s.to == b) << "exact FD reported as soft";
    if (s.from == b && s.to == a) {
      found = true;
      EXPECT_NEAR(s.strength, 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(found);

  // Soft pairs are harvested even when the FD lattice stops at arity 1
  // (the pair level is still built, partitions only).
  opt.max_lhs_arity = 1;
  const DiscoveredDependencies capped = DependencyMiner(opt).Mine(input);
  bool found_capped = false;
  for (const auto& s : capped.soft_correlations()) {
    if (s.from == Col(capped, "b") && s.to == Col(capped, "a")) {
      found_capped = true;
      EXPECT_NEAR(s.strength, 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(found_capped);
}

// ---------- Determinism across thread counts ----------

MinerInput NoisyInput(size_t n, size_t cols) {
  MinerInput input;
  input.columns.resize(cols);
  Rng rng(99);
  for (size_t c = 0; c < cols; ++c) {
    input.column_names.push_back("c" + std::to_string(c));
  }
  for (size_t i = 0; i < n; ++i) {
    const int64_t base = static_cast<int64_t>(rng.Uniform(40));
    for (size_t c = 0; c < cols; ++c) {
      // Mix of derived (correlated) and independent columns.
      const int64_t v = (c % 3 == 0)   ? base / (1 + static_cast<int64_t>(c))
                        : (c % 3 == 1) ? (base + static_cast<int64_t>(
                                              rng.Uniform(1 + c))) %
                                             23
                                       : static_cast<int64_t>(
                                             rng.Uniform(1u << 20));
      input.columns[c].push_back(v);
    }
  }
  input.source_rows = n;
  return input;
}

TEST(DependencyMinerTest, ThreadCountDoesNotChangeResults) {
  const MinerInput input = NoisyInput(3000, 12);
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 3;
  opt.afd_error_threshold = 0.08;
  opt.min_soft_strength = 0.0;

  opt.num_threads = 1;
  const DiscoveredDependencies one = DependencyMiner(opt).Mine(input);
  for (size_t threads : {2u, 4u, 8u}) {
    opt.num_threads = threads;
    const DiscoveredDependencies many = DependencyMiner(opt).Mine(input);
    ASSERT_EQ(one.fds().size(), many.fds().size()) << threads;
    for (size_t i = 0; i < one.fds().size(); ++i) {
      EXPECT_EQ(one.fds()[i].lhs, many.fds()[i].lhs) << threads;
      EXPECT_EQ(one.fds()[i].rhs, many.fds()[i].rhs) << threads;
      EXPECT_EQ(one.fds()[i].error, many.fds()[i].error) << threads;
    }
    ASSERT_EQ(one.soft_correlations().size(),
              many.soft_correlations().size());
    for (size_t i = 0; i < one.soft_correlations().size(); ++i) {
      EXPECT_EQ(one.soft_correlations()[i].from,
                many.soft_correlations()[i].from);
      EXPECT_EQ(one.soft_correlations()[i].to,
                many.soft_correlations()[i].to);
      EXPECT_EQ(one.soft_correlations()[i].strength,
                many.soft_correlations()[i].strength);
    }
    EXPECT_EQ(one.keys(), many.keys());
    EXPECT_EQ(one.constant_columns(), many.constant_columns());
  }
}

// ---------- Full-row verification of sample-exact FDs ----------

/// Clean prefix + violations planted only past row `clean_rows`: a miner
/// run over the prefix sees a -> b as exact; the full rows do not.
MinerInput InputWithLateViolations(size_t n, size_t clean_rows,
                                   size_t violations) {
  MinerInput input = PlantedInput(n);
  for (size_t i = 0; i < violations; ++i) {
    input.columns[1][clean_rows + i] = 9;  // b outlier; a/10 is always <= 4
  }
  return input;
}

TEST(DependencyMinerTest, VerifyDemotesSampleExactFdToAfd) {
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 2;
  const DependencyMiner miner(opt);
  // Mined from the clean 1000-row prefix: a -> b is (sample-)exact.
  DiscoveredDependencies report = miner.Mine(PlantedInput(1000));
  const int a = Col(report, "a");
  const int b = Col(report, "b");
  ASSERT_NE(report.FindFd({a}, b), nullptr);
  ASSERT_TRUE(report.FindFd({a}, b)->exact());

  // Full rows: 40 violating rows in 2000 -> g3 = 0.02 for a -> b (each
  // violator is a minority of its a-group), within the 0.05 AFD threshold.
  // The fixture's other exact FD, {b, extra} -> a (a = b*10 + extra%10), is
  // also broken by the b outliers (g3 = 0.01) — both demote.
  const MinerInput full = InputWithLateViolations(2000, 1000, 40);
  const size_t changed = miner.VerifyExactFds(full, &report);
  EXPECT_EQ(changed, 2u);
  const FunctionalDependency* fd = report.FindFd({a}, b);
  ASSERT_NE(fd, nullptr);
  EXPECT_FALSE(fd->exact());
  EXPECT_NEAR(fd->error, 0.02, 1e-12);
  EXPECT_FALSE(report.DeterminesExactly({a}, b));
  const int extra = Col(report, "extra");
  const FunctionalDependency* fd2 = report.FindFd({b, extra}, a);
  ASSERT_NE(fd2, nullptr);
  EXPECT_NEAR(fd2->error, 0.01, 1e-12);
}

TEST(DependencyMinerTest, VerifyDropsFdBeyondAfdThreshold) {
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 2;
  const DependencyMiner miner(opt);
  DiscoveredDependencies report = miner.Mine(PlantedInput(1000));
  const int a = Col(report, "a");
  const int b = Col(report, "b");
  ASSERT_NE(report.FindFd({a}, b), nullptr);

  // 300 / 2000 violating rows -> g3 = 0.15 > 0.05 for a -> b: not even an
  // AFD. {b, extra} -> a degrades past the threshold too (g3 = 0.12).
  const MinerInput full = InputWithLateViolations(2000, 1000, 300);
  const size_t changed = miner.VerifyExactFds(full, &report);
  EXPECT_EQ(changed, 2u);
  EXPECT_EQ(report.FindFd({a}, b), nullptr);
}

TEST(DependencyMinerTest, VerifyKeepsTrulyExactFdsUntouched) {
  DependencyMinerOptions opt;
  opt.max_lhs_arity = 2;
  const DependencyMiner miner(opt);
  DiscoveredDependencies report = miner.Mine(PlantedInput(1000));
  const int a = Col(report, "a");
  const int b = Col(report, "b");
  // Same generator, no violations: everything re-checks clean.
  EXPECT_EQ(miner.VerifyExactFds(PlantedInput(4000), &report), 0u);
  const FunctionalDependency* fd = report.FindFd({a}, b);
  ASSERT_NE(fd, nullptr);
  EXPECT_TRUE(fd->exact());
}

// ---------- MinerInput adapters ----------

TEST(MinerInputTest, UniverseSampleAndSynopsisAdapters) {
  ssb::SsbOptions options;
  options.scale_factor = 0.002;
  auto catalog = ssb::MakeCatalog(options);
  Universe universe(*catalog, *catalog->GetFactInfo("lineorder"));

  const MinerInput full = MinerInput::FromUniverse(universe);
  EXPECT_EQ(full.NumRows(), universe.NumRows());
  EXPECT_EQ(full.NumColumns(), universe.NumColumns());
  EXPECT_EQ(full.source_rows, universe.NumRows());

  const MinerInput sample = MinerInput::FromUniverse(universe, 512);
  EXPECT_EQ(sample.NumRows(), 512u);
  EXPECT_EQ(sample.source_rows, universe.NumRows());

  const Synopsis synopsis = Synopsis::Build(universe, 256, 42);
  const MinerInput from_syn = MinerInput::FromSynopsis(universe, synopsis);
  EXPECT_EQ(from_syn.NumRows(), 256u);
  EXPECT_EQ(from_syn.column_names[0], universe.Column(0).name);
}

// ---------- SSB: the paper's date hierarchy ----------

TEST(DiscoveryOnSsbTest, FindsDateHierarchyExactFds) {
  ssb::SsbOptions options;
  options.scale_factor = 0.01;
  auto catalog = ssb::MakeCatalog(options);
  const Workload workload = ssb::MakeWorkload();
  StatsOptions sopt;
  sopt.sample_rows = 4096;
  sopt.disk.page_size_bytes = 1024;
  DesignContext context(catalog.get(), workload, sopt);

  DependencyMiningConfig config;
  config.miner.num_threads = 2;
  const DiscoveredDependencies* deps =
      context.MineDependencies("lineorder", config);
  ASSERT_NE(deps, nullptr);
  EXPECT_EQ(context.DependenciesForFact("lineorder"), deps);

  // The date-hierarchy dependencies the paper exploits, discovered from the
  // rows alone (d_datekey functionally determines the whole hierarchy).
  const int datekey = Col(*deps, "d_datekey");
  for (const char* rhs :
       {"d_year", "d_monthnuminyear", "d_yearmonthnum", "d_yearmonth"}) {
    EXPECT_TRUE(deps->DeterminesExactly({datekey}, Col(*deps, rhs))) << rhs;
  }
  // Geography and product hierarchies too.
  EXPECT_TRUE(deps->DeterminesExactly({Col(*deps, "c_city")},
                                      Col(*deps, "c_nation")));
  EXPECT_TRUE(deps->DeterminesExactly({Col(*deps, "p_brand1")},
                                      Col(*deps, "p_category")));
  // d_year does NOT determine d_monthnuminyear.
  EXPECT_FALSE(deps->DeterminesExactly({Col(*deps, "d_year")},
                                       Col(*deps, "d_monthnuminyear")));

  // After installation the stats layer answers strengths from the mined
  // report: an exact mined FD is exactly 1.0.
  const UniverseStats* stats = context.StatsForFact("lineorder");
  ASSERT_NE(stats->mined(), nullptr);
  const Universe& u = stats->universe();
  EXPECT_EQ(stats->correlations().Strength(u.ColumnIndex("d_datekey"),
                                           u.ColumnIndex("d_year")),
            1.0);
}

// ---------- Designer wired to mined correlations ----------

TEST(DiscoveryOnSsbTest, MinedDesignWithinTenPercentOfSeeded) {
  ssb::SsbOptions options;
  options.scale_factor = 0.005;
  auto catalog = ssb::MakeCatalog(options);
  const Workload workload = ssb::MakeWorkload();
  StatsOptions sopt;
  sopt.sample_rows = 4096;
  sopt.disk.page_size_bytes = 1024;
  DesignContext context(catalog.get(), workload, sopt);

  CoraddOptions copt;
  copt.candidates.grouping.alphas = {0.0, 0.25, 0.5};
  copt.candidates.grouping.restarts = 1;
  copt.feedback.max_iterations = 1;
  const uint64_t budget = 24ull << 20;

  DesignEvaluator evaluator(&context);

  // Seeded baseline: strengths from AE over the synopsis. Designed AND
  // evaluated before mining touches the shared context, so the baseline
  // never sees mined state.
  CoraddDesigner seeded(&context, copt);
  const DatabaseDesign d_seeded = seeded.Design(workload, budget);
  const double t_seeded =
      evaluator.Run(d_seeded, workload, seeded.model()).total_seconds;

  // Mined run: every strength the designers consume now comes from the
  // discovery subsystem alone (kMinedOnly — no seeded correlation entries).
  DependencyMiningConfig config;
  config.miner.num_threads = 2;
  config.source = CorrelationSource::kMinedOnly;
  context.MineAllDependencies(config);
  CoraddDesigner mined(&context, copt);
  const DatabaseDesign d_mined = mined.Design(workload, budget);
  const double t_mined =
      evaluator.Run(d_mined, workload, mined.model()).total_seconds;
  EXPECT_GT(t_seeded, 0.0);
  EXPECT_LE(t_mined, t_seeded * 1.10 + 1e-9)
      << "mined " << t_mined << " vs seeded " << t_seeded;
}

}  // namespace
}  // namespace coradd
