// Tests for the work-stealing scheduler behind ThreadPool::ParallelFor
// (common/scheduler.h): the determinism contract across thread counts and
// strategies, nest-safety when a stolen range starts its own ParallelFor,
// load rebalancing under planted 1000:1 skew (steals must actually happen,
// and no worker may sit idle behind the fat iterations), Chase–Lev deque
// semantics, and an 8-thread submit/steal stress that the TSan CI leg runs
// to hunt data races in the deques and the park/publish protocol.
//
// SchedulerStress* stays out of the smoke subset (scheduler_smoke ctest
// entry) — it trades a few seconds for interleaving coverage.
#include "common/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace coradd {
namespace {

using sched::ChaseLevDeque;
using sched::Range;

ParallelForOptions Steal() {
  return ParallelForOptions{ParallelForStrategy::kWorkStealing};
}
ParallelForOptions Fixed() {
  return ParallelForOptions{ParallelForStrategy::kFixedChunk};
}

// A per-index value with enough floating-point structure that any
// reordering, double-execution, or dropped index changes bits somewhere.
double IndexValue(size_t i) {
  const double x = static_cast<double>(i + 1);
  return std::sqrt(x) * std::log(x + 1.0) + std::sin(x * 0.001);
}

// ---------- Determinism: bit-identity across thread counts ----------

TEST(SchedulerDeterminismTest, ReductionBitIdentity10k) {
  constexpr size_t kN = 10000;
  std::vector<double> reference(kN);
  for (size_t i = 0; i < kN; ++i) reference[i] = IndexValue(i);
  double reference_sum = 0.0;
  for (size_t i = 0; i < kN; ++i) reference_sum += reference[i];

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<double> out(kN, 0.0);
    pool.ParallelFor(kN, [&](size_t i) { out[i] = IndexValue(i); }, Steal());
    // Exact bit equality per index, and the index-order merge is therefore
    // bit-identical too.
    EXPECT_EQ(out, reference) << "threads=" << threads;
    double sum = 0.0;
    for (size_t i = 0; i < kN; ++i) sum += out[i];
    EXPECT_EQ(sum, reference_sum) << "threads=" << threads;
  }
}

TEST(SchedulerDeterminismTest, StrategiesAgreeBitIdentically) {
  constexpr size_t kN = 4096;
  ThreadPool pool(8);
  std::vector<double> steal_out(kN), fixed_out(kN);
  pool.ParallelFor(kN, [&](size_t i) { steal_out[i] = IndexValue(i); },
                   Steal());
  pool.ParallelFor(kN, [&](size_t i) { fixed_out[i] = IndexValue(i); },
                   Fixed());
  EXPECT_EQ(steal_out, fixed_out);
}

TEST(SchedulerDeterminismTest, EveryIndexRunsExactlyOnce) {
  constexpr size_t kN = 50000;
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, Steal());
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SchedulerDeterminismTest, DegenerateSizes) {
  ThreadPool pool(4);
  int zero_runs = 0;
  pool.ParallelFor(0, [&](size_t) { ++zero_runs; }, Steal());
  EXPECT_EQ(zero_runs, 0);

  std::atomic<int> one_runs{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    one_runs.fetch_add(1);
  }, Steal());
  EXPECT_EQ(one_runs.load(), 1);

  // Fewer iterations than workers: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); }, Steal());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------- Nesting: ParallelFor inside a stolen task ----------

TEST(SchedulerNestingTest, NestedParallelForInsideStolenRanges) {
  constexpr size_t kOuter = 24;
  constexpr size_t kInner = 64;
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  // Skew the outer loop (sleeps) so outer ranges are actually stolen by
  // idle workers, which then start nested loops from inside stolen tasks.
  pool.ParallelFor(kOuter, [&](size_t o) {
    std::this_thread::sleep_for(std::chrono::microseconds(o % 3 == 0 ? 500
                                                                     : 50));
    pool.ParallelFor(kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    }, Steal());
  }, Steal());
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "cell " << k;
  }
}

TEST(SchedulerNestingTest, NestedReductionBitIdentity) {
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 128;
  std::vector<double> reference(kOuter);
  for (size_t o = 0; o < kOuter; ++o) {
    double s = 0.0;
    for (size_t i = 0; i < kInner; ++i) s += IndexValue(o * kInner + i);
    reference[o] = s;
  }
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<double> out(kOuter, 0.0);
    pool.ParallelFor(kOuter, [&](size_t o) {
      std::vector<double> inner(kInner);
      pool.ParallelFor(kInner, [&](size_t i) {
        inner[i] = IndexValue(o * kInner + i);
      }, Steal());
      double s = 0.0;
      for (size_t i = 0; i < kInner; ++i) s += inner[i];
      out[o] = s;
    }, Steal());
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

// ---------- Skew: planted 1000:1 load without idle-worker starvation ----

TEST(SchedulerSkewTest, PlantedSkewRebalancesViaStealing) {
  // 256 iterations; a chunk-sized burst of 8 fat iterations (5 ms) amid
  // cheap ones (5 us) — the planted 1000:1 skew. Under fixed chunking the
  // burst lands in one chunk and serializes (~40 ms on one worker while
  // the rest idle); the work-stealing path must decompose it across
  // workers, which shows up as a sub-serial wall time and nonzero
  // steal/split counters.
  constexpr size_t kN = 256;
  constexpr size_t kBurstBegin = 120;
  constexpr size_t kBurstEnd = 128;
  constexpr auto kFat = std::chrono::milliseconds(5);
  constexpr auto kCheap = std::chrono::microseconds(5);
  const double serial_seconds =
      static_cast<double>(kBurstEnd - kBurstBegin) * 0.005 +
      static_cast<double>(kN - (kBurstEnd - kBurstBegin)) * 0.000005;

  ThreadPool pool(8);
  const auto before = pool.scheduler_stats();
  std::vector<std::atomic<int>> hits(kN);
  const auto t0 = std::chrono::steady_clock::now();
  pool.ParallelFor(kN, [&](size_t i) {
    if (i >= kBurstBegin && i < kBurstEnd) {
      std::this_thread::sleep_for(kFat);
    } else {
      std::this_thread::sleep_for(kCheap);
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }, Steal());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
  const auto after = pool.scheduler_stats();
  EXPECT_GT(after.steals, before.steals)
      << "skewed load completed without a single steal";
  EXPECT_GT(after.splits, before.splits);
  // The burst must not serialize: with sleep-based iterations even a
  // single-core host overlaps the fat waits once they are distributed, so
  // anything close to the serial sum means the rebalancing failed.
  EXPECT_LT(wall, 0.9 * serial_seconds)
      << "wall " << wall << "s vs serial " << serial_seconds << "s";
}

// ---------- Chase–Lev deque unit coverage ----------

TEST(ChaseLevDequeTest, LifoOwnerFifoThief) {
  ChaseLevDeque dq;
  EXPECT_TRUE(dq.Empty());
  EXPECT_TRUE(dq.Push(Range{0, 10}));
  EXPECT_TRUE(dq.Push(Range{10, 20}));
  EXPECT_TRUE(dq.Push(Range{20, 30}));
  EXPECT_FALSE(dq.Empty());

  // Thief takes the oldest (largest-by-convention) range.
  Range r;
  ASSERT_EQ(dq.Steal(&r), ChaseLevDeque::StealResult::kStolen);
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 10u);

  // Owner pops newest first.
  ASSERT_TRUE(dq.PopBottom(&r));
  EXPECT_EQ(r.lo, 20u);
  ASSERT_TRUE(dq.PopBottom(&r));
  EXPECT_EQ(r.lo, 10u);
  EXPECT_FALSE(dq.PopBottom(&r));
  EXPECT_EQ(dq.Steal(&r), ChaseLevDeque::StealResult::kEmpty);
  EXPECT_TRUE(dq.Empty());
}

TEST(ChaseLevDequeTest, CapacityBoundsPush) {
  ChaseLevDeque dq;
  uint32_t pushed = 0;
  while (dq.Push(Range{pushed, pushed + 1})) ++pushed;
  EXPECT_EQ(pushed, ChaseLevDeque::kCapacity);
  // Draining one slot makes room again.
  Range r;
  ASSERT_TRUE(dq.PopBottom(&r));
  EXPECT_TRUE(dq.Push(Range{pushed, pushed + 1}));
}

TEST(ChaseLevDequeTest, ConcurrentOwnerAndThievesLoseNothing) {
  // One owner pushes and pops while 3 thieves steal; every pushed range is
  // consumed exactly once. This is the deque-level race the TSan leg pins.
  constexpr uint32_t kRanges = 20000;
  ChaseLevDeque dq;
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<uint32_t> consumed_count{0};
  std::atomic<bool> done{false};

  auto consume = [&](Range r) {
    consumed_sum.fetch_add(r.lo, std::memory_order_relaxed);
    consumed_count.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      Range r;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.Steal(&r) == ChaseLevDeque::StealResult::kStolen) consume(r);
      }
      while (dq.Steal(&r) == ChaseLevDeque::StealResult::kStolen) consume(r);
    });
  }

  uint64_t expected_sum = 0;
  for (uint32_t i = 0; i < kRanges; ++i) {
    expected_sum += i;
    while (!dq.Push(Range{i, i + 1})) {
      Range r;
      if (dq.PopBottom(&r)) consume(r);
    }
    if ((i & 7) == 0) {
      Range r;
      if (dq.PopBottom(&r)) consume(r);
    }
  }
  Range r;
  while (dq.PopBottom(&r)) consume(r);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(consumed_count.load(), kRanges);
  EXPECT_EQ(consumed_sum.load(), expected_sum);
}

// ---------- Stress: 8-thread submit/steal mix (TSan target) ----------

TEST(SchedulerStressTest, SubmitAndParallelForMix8Threads) {
  ThreadPool pool(8);
  constexpr int kExternalThreads = 4;
  constexpr int kLoopsPerThread = 40;
  constexpr size_t kN = 512;
  std::atomic<uint64_t> iteration_count{0};
  std::atomic<uint64_t> submitted_count{0};

  std::vector<std::thread> external;
  for (int t = 0; t < kExternalThreads; ++t) {
    external.emplace_back([&, t] {
      for (int l = 0; l < kLoopsPerThread; ++l) {
        // Alternate strategies so steal-mode helpers and fixed-chunk
        // drains (which pull steal helpers through RunOneQueuedTask)
        // coexist in the same queue.
        const auto opts = (l + t) % 3 == 0 ? Fixed() : Steal();
        pool.ParallelFor(kN, [&](size_t i) {
          iteration_count.fetch_add(1, std::memory_order_relaxed);
          if (i % 97 == 0) std::this_thread::yield();
        }, opts);
        if (l % 5 == 0) {
          pool.Submit([&] {
            submitted_count.fetch_add(1, std::memory_order_relaxed);
          });
        }
      }
    });
  }
  for (auto& th : external) th.join();
  pool.WaitIdle();

  EXPECT_EQ(iteration_count.load(),
            static_cast<uint64_t>(kExternalThreads) * kLoopsPerThread * kN);
  EXPECT_EQ(submitted_count.load(),
            static_cast<uint64_t>(kExternalThreads) * (kLoopsPerThread / 5));
}

TEST(SchedulerStressTest, NestedSkewedLoopsUnderContention) {
  ThreadPool pool(8);
  constexpr int kRounds = 6;
  std::atomic<uint64_t> cells{0};
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(16, [&](size_t o) {
      if (o % 5 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
      pool.ParallelFor(64, [&](size_t) {
        cells.fetch_add(1, std::memory_order_relaxed);
      }, Steal());
    }, Steal());
  }
  EXPECT_EQ(cells.load(), static_cast<uint64_t>(kRounds) * 16 * 64);
}

}  // namespace
}  // namespace coradd
