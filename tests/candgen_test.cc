// Lockdown suite for the candidate-generation engine (§4 + docs/CANDGEN.md):
// golden-candidate snapshots captured from the pre-rank-cache generation
// path (candidate counts, spec signatures, priced benefits), bit-identity of
// the generated CandidateSet at 1/2/8 threads, cache-hit vs cold-generation
// equivalence of the cross-designer CandidateGenCache, and equivalence of
// ColumnOrderCache rank composition with the legacy fresh-std::sort ranks on
// randomized synopses. Cheap cases run under the `smoke` ctest label as
// `candgen_smoke` (--gtest_filter=CandgenSmoke*).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/candgen_cache.h"
#include "core/context.h"
#include "cost/column_order_cache.h"
#include "cost/correlation_cost_model.h"
#include "mv/candidate_generator.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

// ---------------------------------------------------------------------------
// Golden fixture — must stay in lockstep with the snapshot generator that
// captured the constants below from the pre-refactor candidate path
// (candidate counts, FNV-1a hashes over spec signatures and priced costs).
// Any change to these numbers means the refactored engine no longer
// produces the bit-identical candidate pool and prices.
// ---------------------------------------------------------------------------

uint64_t Fnv1a(const std::string& s, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

StatsOptions GoldenStats() {
  StatsOptions sopt;
  sopt.sample_rows = 8192;
  sopt.disk.page_size_bytes = 1024;
  sopt.disk.seek_seconds = 0.0055 * 1024.0 / 8192.0;
  return sopt;
}

Query SynthQuery(const std::string& id, std::vector<Predicate> preds,
                 std::vector<std::string> group_by, double frequency) {
  Query q;
  q.id = id;
  q.fact_table = "lineorder";
  q.predicates = std::move(preds);
  q.group_by = std::move(group_by);
  q.aggregates = {{"lo_revenue", ""}};
  q.frequency = frequency;
  return q;
}

Workload SyntheticWorkload() {
  Workload w;
  w.name = "synthetic6";
  w.queries.push_back(SynthQuery(
      "S1",
      {Predicate::Eq("d_year", 1995), Predicate::Range("lo_discount", 2, 4)},
      {}, 1.0));
  w.queries.push_back(SynthQuery(
      "S2",
      {Predicate::Range("d_year", 1993, 1994),
       Predicate::Eq("s_region", ssb::RegionCode("ASIA"))},
      {"s_nation"}, 2.0));
  w.queries.push_back(SynthQuery(
      "S3",
      {Predicate::In("c_city", {ssb::CityCode("UNITED KI1"),
                                ssb::CityCode("UNITED KI5")}),
       Predicate::Eq("d_year", 1996)},
      {"c_city"}, 0.5));
  w.queries.push_back(SynthQuery(
      "S4",
      {Predicate::Eq("p_category", ssb::CategoryCode("MFGR#12")),
       Predicate::Range("lo_quantity", 10, 20)},
      {"p_brand1"}, 1.0));
  w.queries.push_back(SynthQuery(
      "S5",
      {Predicate::Eq("s_nation", ssb::NationCode("CHINA")),
       Predicate::Range("d_yearmonthnum", ssb::YearMonthNum(1994, 1),
                        ssb::YearMonthNum(1994, 6))},
      {}, 3.0));
  w.queries.push_back(SynthQuery(
      "S6",
      {Predicate::Range("lo_orderdate", 19930101, 19931231),
       Predicate::Eq("lo_shipmode", 2)},
      {}, 1.0));
  return w;
}

struct GoldenSnapshot {
  size_t mvs;
  size_t groups;
  uint64_t sig_hash;
  uint64_t price_hash;
  const char* first_sig;
};

// Captured 2026-07-30 from the pre-refactor generation path (per-trial
// std::sort ranks, serial group loop) at SSB scale 0.002, 1 KB pages,
// 8192-row synopsis, default generator + cost-model options.
constexpr GoldenSnapshot kGoldenSsb13 = {
    103, 51, 0x4d1d32632257c553ull, 0x6b7f3b53e6534c20ull,
    "lineorder|0,|d_year,lo_discount,lo_quantity|"
    "d_year,lo_discount,lo_extendedprice,lo_quantity"};
constexpr GoldenSnapshot kGoldenSynthetic6 = {
    55, 19, 0x1d90a5a2497e08d3ull, 0xba7c2f096e6cff35ull,
    "lineorder|0,|d_year,lo_discount|d_year,lo_discount,lo_revenue"};

struct GoldenFixture {
  std::unique_ptr<Catalog> catalog;
  Workload workload;
  std::unique_ptr<DesignContext> context;
  std::unique_ptr<CorrelationCostModel> model;

  explicit GoldenFixture(Workload w) : workload(std::move(w)) {
    ssb::SsbOptions options;
    options.scale_factor = 0.002;
    catalog = ssb::MakeCatalog(options);
    context = std::make_unique<DesignContext>(catalog.get(), workload,
                                              GoldenStats());
    model = std::make_unique<CorrelationCostModel>(&context->registry());
  }

  CandidateSet Generate(CandidateGeneratorOptions options = {}) const {
    MvCandidateGenerator generator(&context->catalog(), &context->registry(),
                                   model.get(), options);
    return generator.Generate(workload);
  }
};

void ExpectMatchesSnapshot(const GoldenFixture& f, const CandidateSet& set,
                           const GoldenSnapshot& golden) {
  EXPECT_EQ(set.mvs.size(), golden.mvs);
  EXPECT_EQ(set.groups.size(), golden.groups);
  ASSERT_FALSE(set.mvs.empty());
  EXPECT_EQ(MvSpecSignature(set.mvs[0]), golden.first_sig);

  uint64_t sig_hash = 1469598103934665603ull;
  uint64_t price_hash = 1469598103934665603ull;
  for (const auto& spec : set.mvs) {
    const std::string sig = MvSpecSignature(spec);
    sig_hash = Fnv1a(sig, sig_hash);
    price_hash = Fnv1a(sig, price_hash);
    for (const auto& q : f.workload.queries) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g",
                    f.model->Seconds(q, spec) * q.frequency);
      price_hash = Fnv1a(buf, price_hash);
    }
  }
  EXPECT_EQ(sig_hash, golden.sig_hash) << "spec signatures drifted";
  EXPECT_EQ(price_hash, golden.price_hash) << "priced benefits drifted";
}

TEST(CandgenGoldenTest, Ssb13MatchesPreRefactorSnapshot) {
  GoldenFixture f(ssb::MakeWorkload());
  ExpectMatchesSnapshot(f, f.Generate(), kGoldenSsb13);
}

TEST(CandgenGoldenTest, Synthetic6MatchesPreRefactorSnapshot) {
  GoldenFixture f(SyntheticWorkload());
  ExpectMatchesSnapshot(f, f.Generate(), kGoldenSynthetic6);
}

// ---------------------------------------------------------------------------
// Determinism: the generated CandidateSet is bit-identical at any thread
// count (EXPECT_EQ on every field, including priced doubles downstream).
// ---------------------------------------------------------------------------

void ExpectSetsIdentical(const CandidateSet& a, const CandidateSet& b) {
  ASSERT_EQ(a.mvs.size(), b.mvs.size());
  for (size_t i = 0; i < a.mvs.size(); ++i) {
    EXPECT_EQ(a.mvs[i].name, b.mvs[i].name) << i;
    EXPECT_EQ(a.mvs[i].fact_table, b.mvs[i].fact_table) << i;
    EXPECT_EQ(a.mvs[i].columns, b.mvs[i].columns) << i;
    EXPECT_EQ(a.mvs[i].clustered_key, b.mvs[i].clustered_key) << i;
    EXPECT_EQ(a.mvs[i].query_group, b.mvs[i].query_group) << i;
    EXPECT_EQ(a.mvs[i].is_fact_recluster, b.mvs[i].is_fact_recluster) << i;
    EXPECT_EQ(a.mvs[i].is_base, b.mvs[i].is_base) << i;
  }
  EXPECT_EQ(a.groups, b.groups);
}

TEST(CandgenDeterminismTest, BitIdenticalAtThreadCounts128) {
  GoldenFixture f(SyntheticWorkload());
  ThreadPool pool1(1), pool2(2), pool8(8);
  CandidateGeneratorOptions o1, o2, o8;
  o1.pool = &pool1;
  o2.pool = &pool2;
  o8.pool = &pool8;
  const CandidateSet s1 = f.Generate(o1);
  const CandidateSet s2 = f.Generate(o2);
  const CandidateSet s8 = f.Generate(o8);
  ExpectSetsIdentical(s1, s2);
  ExpectSetsIdentical(s1, s8);
  ExpectMatchesSnapshot(f, s8, kGoldenSynthetic6);  // and still golden
}

TEST(CandgenDeterminismTest, PruningOnOffProducesIdenticalSets) {
  GoldenFixture f(SyntheticWorkload());
  CandidateGeneratorOptions pruned;  // default: prune_trials = true
  CandidateGeneratorOptions exhaustive;
  exhaustive.merging.prune_trials = false;
  ExpectSetsIdentical(f.Generate(pruned), f.Generate(exhaustive));
}

// ---------------------------------------------------------------------------
// CandidateGenCache: hits return the cold-generation set verbatim.
// ---------------------------------------------------------------------------

TEST(CandgenCacheTest, HitMatchesColdGeneration) {
  GoldenFixture f(SyntheticWorkload());
  const std::string key = CandidateGenKey(
      f.workload, f.model->CacheId(),
      CandidateGeneratorOptionsSignature(CandidateGeneratorOptions{}),
      f.context->stats_epoch());

  CandidateGenCache& cache = f.context->candgen_cache();
  const auto first =
      cache.GetOrGenerate(key, [&] { return f.Generate(); });
  const auto second = cache.GetOrGenerate(key, [] {
    ADD_FAILURE() << "cache hit must not regenerate";
    return CandidateSet{};
  });
  EXPECT_EQ(first.get(), second.get());  // shared, not regenerated
  EXPECT_EQ(cache.stats().cache_hits, 1u);
  EXPECT_EQ(cache.stats().cache_misses, 1u);
  EXPECT_GT(cache.stats().wall_seconds, 0.0);

  // A cold generation on a fresh context is bit-identical to the cached set.
  GoldenFixture cold(SyntheticWorkload());
  ExpectSetsIdentical(*first, cold.Generate());
}

// ---------------------------------------------------------------------------
// Smoke cases (registered as the `candgen_smoke` ctest entry): order-cache
// equivalence with the legacy sort on randomized synopses, cache key
// discrimination, and cache bookkeeping — no SSB fixture, sub-second.
// ---------------------------------------------------------------------------

/// Builds a single-table catalog of `rows` rows with `num_cols` randomized
/// int columns (mixed cardinalities so equal-runs of every length appear).
std::unique_ptr<Catalog> RandomCatalog(uint64_t seed, size_t rows,
                                       size_t num_cols) {
  Rng rng(seed);
  Schema s;
  ColumnDef key;
  key.name = "r_key";
  key.byte_size = 8;
  s.AddColumn(key);
  for (size_t c = 0; c < num_cols; ++c) {
    ColumnDef col;
    col.name = "r_c" + std::to_string(c);
    col.byte_size = 4;
    s.AddColumn(col);
  }
  auto table = std::make_unique<Table>(std::move(s), "rand");
  for (size_t i = 0; i < rows; ++i) {
    std::vector<int64_t> row;
    row.push_back(static_cast<int64_t>(i));
    for (size_t c = 0; c < num_cols; ++c) {
      // Cardinality 2^(c+1): column 0 is near-binary, later ones spread.
      row.push_back(static_cast<int64_t>(rng.Uniform(2ull << c)));
    }
    table->AppendRow(row);
  }
  auto catalog = std::make_unique<Catalog>();
  catalog->AddTable(std::move(table));
  FactTableInfo fact;
  fact.name = "rand";
  fact.primary_key = {"r_key"};
  catalog->RegisterFactTable(fact);
  return catalog;
}

/// The legacy rank computation ComposeRanks replaced: a fresh comparison
/// sort by (values..., row index).
std::vector<uint32_t> LegacySortRanks(const Synopsis& syn,
                                      const std::vector<int>& key_cols) {
  const size_t n = syn.sample_rows();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (int c : key_cols) {
      const int64_t va = syn.Values(c)[a];
      const int64_t vb = syn.Values(c)[b];
      if (va != vb) return va < vb;
    }
    return a < b;
  });
  std::vector<uint32_t> rank(n);
  for (size_t pos = 0; pos < n; ++pos) {
    rank[order[pos]] = static_cast<uint32_t>(pos);
  }
  return rank;
}

TEST(CandgenSmokeTest, ComposeRanksMatchesLegacySortOnRandomizedSynopses) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto catalog = RandomCatalog(seed, /*rows=*/3000, /*num_cols=*/6);
    Universe universe(*catalog, *catalog->GetFactInfo("rand"));
    StatsOptions sopt;
    sopt.sample_rows = 1024;  // sampled synopsis
    UniverseStats stats(&universe, sopt);
    const Synopsis& syn = stats.synopsis();
    ColumnOrderCache cache(&syn);

    Rng rng(seed * 977);
    const int num_cols = static_cast<int>(syn.num_columns());
    for (int trial = 0; trial < 40; ++trial) {
      // Random non-empty key of 1..4 distinct columns, random order.
      std::vector<int> cols(static_cast<size_t>(num_cols));
      std::iota(cols.begin(), cols.end(), 0);
      for (size_t i = cols.size(); i > 1; --i) {
        std::swap(cols[i - 1], cols[rng.Uniform(i)]);
      }
      cols.resize(1 + rng.Uniform(4));
      EXPECT_EQ(cache.ComposeRanks(cols), LegacySortRanks(syn, cols))
          << "seed " << seed << " trial " << trial;
    }
    // Full-row synopsis (sample >= rows) must work too.
    StatsOptions full_opt;
    full_opt.sample_rows = 100000;
    UniverseStats full_stats(&universe, full_opt);
    ColumnOrderCache full_cache(&full_stats.synopsis());
    const std::vector<int> all_cols = {1, 2, 3};
    EXPECT_EQ(full_cache.ComposeRanks(all_cols),
              LegacySortRanks(full_stats.synopsis(), all_cols));
  }
}

TEST(CandgenSmokeTest, ComposeRanksEmptyKeyIsRowOrder) {
  auto catalog = RandomCatalog(7, 100, 2);
  Universe universe(*catalog, *catalog->GetFactInfo("rand"));
  StatsOptions sopt;
  sopt.sample_rows = 64;
  UniverseStats stats(&universe, sopt);
  ColumnOrderCache cache(&stats.synopsis());
  std::vector<uint32_t> identity(cache.num_rows());
  std::iota(identity.begin(), identity.end(), 0u);
  EXPECT_EQ(cache.ComposeRanks({}), identity);
}

TEST(CandgenSmokeTest, ColumnOrderRunStructureIsConsistent) {
  auto catalog = RandomCatalog(21, 500, 3);
  Universe universe(*catalog, *catalog->GetFactInfo("rand"));
  StatsOptions sopt;
  sopt.sample_rows = 256;
  UniverseStats stats(&universe, sopt);
  const Synopsis& syn = stats.synopsis();
  ColumnOrderCache cache(&syn);
  for (int c = 1; c < static_cast<int>(syn.num_columns()); ++c) {
    const ColumnOrder& order = cache.ForColumn(c);
    ASSERT_EQ(order.sorted_rows.size(), syn.sample_rows());
    ASSERT_EQ(order.run_begin.back(), syn.sample_rows());
    // Runs partition the sorted permutation into equal-value spans.
    for (size_t d = 0; d + 1 < order.run_begin.size(); ++d) {
      const int64_t v = syn.Values(c)[order.sorted_rows[order.run_begin[d]]];
      for (uint32_t p = order.run_begin[d]; p < order.run_begin[d + 1]; ++p) {
        EXPECT_EQ(syn.Values(c)[order.sorted_rows[p]], v);
        EXPECT_EQ(order.dense_rank[order.sorted_rows[p]], d);
      }
      if (d > 0) {
        EXPECT_LT(
            syn.Values(c)[order.sorted_rows[order.run_begin[d - 1]]], v);
      }
    }
  }
}

TEST(CandgenSmokeTest, CacheKeyDiscriminatesInputs) {
  const Workload w = SyntheticWorkload();
  const std::string base = CandidateGenKey(w, "m", "o", 0);
  EXPECT_EQ(base, CandidateGenKey(w, "m", "o", 0));
  EXPECT_NE(base, CandidateGenKey(w, "m2", "o", 0));    // model
  EXPECT_NE(base, CandidateGenKey(w, "m", "o2", 0));    // options
  EXPECT_NE(base, CandidateGenKey(w, "m", "o", 1));     // stats epoch
  Workload w2 = w;
  w2.queries[0].frequency = 9.0;
  EXPECT_NE(base, CandidateGenKey(w2, "m", "o", 0));    // frequency
  Workload w3 = w;
  w3.queries[1].predicates[0].hi += 1;
  EXPECT_NE(base, CandidateGenKey(w3, "m", "o", 0));    // predicate bound
}

TEST(CandgenSmokeTest, CacheCountsAndSharesEntries) {
  CandidateGenCache cache;
  auto make = [](int n) {
    CandidateSet set;
    for (int i = 0; i < n; ++i) {
      MvSpec spec;
      spec.name = "m" + std::to_string(i);
      set.mvs.push_back(std::move(spec));
    }
    return set;
  };
  const auto a = cache.GetOrGenerate("k1", [&] { return make(3); });
  const auto b = cache.GetOrGenerate("k1", [&] { return make(99); });
  const auto c = cache.GetOrGenerate("k2", [&] { return make(5); });
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->mvs.size(), 3u);
  EXPECT_EQ(c->mvs.size(), 5u);
  EXPECT_EQ(cache.size(), 2u);
  const CandGenStats stats = cache.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

}  // namespace
}  // namespace coradd
