// Tests for src/exec: materialization with row provenance, plan-by-plan
// executor correctness against reference scans, and maintenance simulation.
#include <gtest/gtest.h>

#include "cost/correlation_cost_model.h"
#include "exec/executor.h"
#include "exec/maintenance.h"
#include "ssb/ssb.h"

namespace coradd {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ssb::SsbOptions options;
    // Big enough that a selective clustered scan beats a sequential scan
    // even with per-fragment seeks (the paper-scale geometry).
    options.scale_factor = 0.02;
    catalog_ = ssb::MakeCatalog(options).release();
    universe_ = new Universe(*catalog_, *catalog_->GetFactInfo("lineorder"));
    StatsOptions sopt;
    sopt.sample_rows = 4096;
    sopt.disk.page_size_bytes = 1024;
    stats_ = new UniverseStats(universe_, sopt);
    registry_ = new StatsRegistry();
    registry_->Register(stats_);
    model_ = new CorrelationCostModel(registry_);
    workload_ = new Workload(ssb::MakeWorkload());
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete model_;
    delete registry_;
    delete stats_;
    delete universe_;
    delete catalog_;
  }

  static DiskParams Disk() { return stats_->options().disk; }

  /// Reference result: brute-force filter + aggregate over the universe.
  static std::pair<double, uint64_t> Reference(const Query& q) {
    double agg = 0.0;
    uint64_t rows = 0;
    std::vector<std::pair<const Predicate*, int>> preds;
    for (const auto& p : q.predicates) {
      preds.emplace_back(&p, universe_->ColumnIndex(p.column));
    }
    std::vector<std::pair<int, int>> aggs;
    for (const auto& a : q.aggregates) {
      aggs.emplace_back(universe_->ColumnIndex(a.col_a),
                        a.col_b.empty() ? -1 : universe_->ColumnIndex(a.col_b));
    }
    for (RowId r = 0; r < universe_->NumRows(); ++r) {
      bool ok = true;
      for (const auto& [p, c] : preds) {
        if (!p->Matches(universe_->Value(r, c))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++rows;
      for (const auto& [a, b] : aggs) {
        const double va = static_cast<double>(universe_->Value(r, a));
        agg += b >= 0 ? va * static_cast<double>(universe_->Value(r, b)) : va;
      }
    }
    return {agg, rows};
  }

  static MvSpec BaseSpec() {
    MvSpec spec;
    spec.name = "base";
    spec.fact_table = "lineorder";
    for (size_t c = 0; c < universe_->fact_table().schema().NumColumns(); ++c) {
      spec.columns.push_back(universe_->fact_table().schema().Column(c).name);
    }
    spec.clustered_key = {"lo_orderkey", "lo_linenumber"};
    spec.is_fact_recluster = true;
    spec.is_base = true;
    return spec;
  }

  static Catalog* catalog_;
  static Universe* universe_;
  static UniverseStats* stats_;
  static StatsRegistry* registry_;
  static CorrelationCostModel* model_;
  static Workload* workload_;
};

Catalog* ExecTest::catalog_ = nullptr;
Universe* ExecTest::universe_ = nullptr;
UniverseStats* ExecTest::stats_ = nullptr;
StatsRegistry* ExecTest::registry_ = nullptr;
CorrelationCostModel* ExecTest::model_ = nullptr;
Workload* ExecTest::workload_ = nullptr;

// ---------- Materializer ----------

TEST_F(ExecTest, MaterializeSortsByClusteredKey) {
  Materializer mat(universe_, Disk());
  MvSpec spec;
  spec.name = "mv";
  spec.fact_table = "lineorder";
  spec.columns = {"d_year", "lo_discount", "lo_revenue"};
  spec.clustered_key = {"d_year", "lo_discount"};
  auto obj = mat.Materialize(spec);
  const Table& t = obj->table->table();
  for (RowId r = 1; r < t.NumRows(); ++r) {
    const int64_t prev = t.Value(r - 1, 0) * 1000 + t.Value(r - 1, 1);
    const int64_t cur = t.Value(r, 0) * 1000 + t.Value(r, 1);
    EXPECT_LE(prev, cur);
  }
}

TEST_F(ExecTest, MaterializeProvenanceIsCorrect) {
  Materializer mat(universe_, Disk());
  MvSpec spec;
  spec.name = "mv";
  spec.fact_table = "lineorder";
  spec.columns = {"lo_revenue", "d_year"};
  spec.clustered_key = {"d_year"};
  auto obj = mat.Materialize(spec);
  const int rev = universe_->ColumnIndex("lo_revenue");
  for (RowId r = 0; r < 500; ++r) {
    EXPECT_EQ(obj->table->table().Value(r, 0),
              universe_->Value(obj->fact_row_of[r], rev));
  }
}

TEST_F(ExecTest, ProvenanceColumnHasZeroWidth) {
  Materializer mat(universe_, Disk());
  MvSpec spec;
  spec.name = "mv";
  spec.fact_table = "lineorder";
  spec.columns = {"d_year", "lo_revenue"};
  spec.clustered_key = {"d_year"};
  auto obj = mat.Materialize(spec);
  // Row width = 4 + 4; the hidden provenance column adds nothing.
  EXPECT_EQ(obj->table->layout().row_width_bytes, 8u);
}

TEST_F(ExecTest, MaterializedSizeMatchesEstimate) {
  Materializer mat(universe_, Disk());
  MvSpec spec;
  spec.name = "mv";
  spec.fact_table = "lineorder";
  spec.columns = {"d_year", "lo_discount", "lo_quantity", "lo_extendedprice"};
  spec.clustered_key = {"d_year"};
  auto obj = mat.Materialize(spec);
  EXPECT_EQ(obj->size_bytes, EstimateMvSizeBytes(spec, *stats_, Disk()));
}

TEST_F(ExecTest, MaterializeBuildsCmsAndBtrees) {
  Materializer mat(universe_, Disk());
  MvSpec spec = BaseSpec();
  spec.is_base = false;
  spec.clustered_key = {"lo_orderdate"};
  CmSpec cm;
  cm.key_columns = {"d_year"};  // universe column, not stored: provenance
  cm.bucketing = {1, 8};
  auto obj = mat.Materialize(spec, {cm}, {"lo_discount"});
  ASSERT_EQ(obj->cms.size(), 1u);
  ASSERT_EQ(obj->btrees.size(), 1u);
  EXPECT_GT(obj->cm_bytes, 0u);
  EXPECT_GT(obj->btree_bytes, 0u);
  // d_year co-occurs with one year's orderdates: compact CM.
  EXPECT_LT(obj->cms[0]->NumPairs(), 4000u);
}

// ---------- Executor correctness across plans ----------

TEST_F(ExecTest, FullScanMatchesReference) {
  Materializer mat(universe_, Disk());
  auto base = mat.Materialize(BaseSpec());
  QueryExecutor exec(registry_, model_);
  for (const auto& q : workload_->queries) {
    DiskModel disk(Disk());
    const QueryRunResult run = exec.Run(q, *base, &disk);
    const auto [ref_agg, ref_rows] = Reference(q);
    EXPECT_EQ(run.rows_output, ref_rows) << q.id;
    EXPECT_NEAR(run.aggregate, ref_agg, std::abs(ref_agg) * 1e-9 + 1e-6)
        << q.id;
  }
}

TEST_F(ExecTest, ClusteredScanMatchesReferenceAndReadsLess) {
  Materializer mat(universe_, Disk());
  const Query& q11 = workload_->queries[0];
  MvSpec spec;
  spec.name = "mv_q11";
  spec.fact_table = "lineorder";
  spec.columns = q11.AllColumns();
  spec.clustered_key = {"d_year", "lo_discount", "lo_quantity"};
  auto obj = mat.Materialize(spec);
  QueryExecutor exec(registry_, model_);
  DiskModel disk(Disk());
  const QueryRunResult run = exec.Run(q11, *obj, &disk);
  const auto [ref_agg, ref_rows] = Reference(q11);
  EXPECT_EQ(run.rows_output, ref_rows);
  EXPECT_NEAR(run.aggregate, ref_agg, std::abs(ref_agg) * 1e-9 + 1e-6);
  EXPECT_EQ(run.path, AccessPath::kClusteredScan);
  EXPECT_LT(run.pages_read, obj->table->NumPages() / 2);
}

TEST_F(ExecTest, CmPlanMatchesReference) {
  Materializer mat(universe_, Disk());
  MvSpec spec = BaseSpec();
  spec.is_base = false;
  spec.name = "recluster_od";
  spec.clustered_key = {"lo_orderdate"};
  CmSpec cm;
  cm.key_columns = {"d_yearmonthnum"};
  cm.bucketing = {1, 8};
  auto obj = mat.Materialize(spec, {cm});
  QueryExecutor exec(registry_, model_);
  const Query& q12 = workload_->queries[1];  // predicates d_yearmonthnum
  DiskModel disk(Disk());
  const QueryRunResult run = exec.Run(q12, *obj, &disk);
  const auto [ref_agg, ref_rows] = Reference(q12);
  EXPECT_EQ(run.rows_output, ref_rows);
  EXPECT_NEAR(run.aggregate, ref_agg, std::abs(ref_agg) * 1e-9 + 1e-6);
  EXPECT_EQ(run.path, AccessPath::kSecondary);
  // Correlated CM touches a small slice of the heap.
  EXPECT_LT(run.pages_read, obj->table->NumPages() / 4);
}

TEST_F(ExecTest, BTreePlanMatchesReference) {
  Materializer mat(universe_, Disk());
  const Query& q11 = workload_->queries[0];
  MvSpec spec;
  spec.name = "mv_bt";
  spec.fact_table = "lineorder";
  spec.columns = q11.AllColumns();
  spec.clustered_key = {"lo_quantity"};  // weakly useful clustering
  auto obj = mat.Materialize(spec, {}, {"d_year"});
  QueryExecutor exec(registry_, model_);
  DiskModel disk(Disk());
  const QueryRunResult run = exec.Run(q11, *obj, &disk);
  const auto [ref_agg, ref_rows] = Reference(q11);
  EXPECT_EQ(run.rows_output, ref_rows);
  EXPECT_NEAR(run.aggregate, ref_agg, std::abs(ref_agg) * 1e-9 + 1e-6);
}

TEST_F(ExecTest, EveryQuerySameAnswerOnBaseAndRecluster) {
  Materializer mat(universe_, Disk());
  auto base = mat.Materialize(BaseSpec());
  MvSpec re = BaseSpec();
  re.is_base = false;
  re.name = "re_od";
  re.clustered_key = {"lo_orderdate"};
  CmSpec cm_y;
  cm_y.key_columns = {"d_year"};
  auto reclustered = mat.Materialize(re, {cm_y});
  QueryExecutor exec(registry_, model_);
  for (const auto& q : workload_->queries) {
    DiskModel d1(Disk()), d2(Disk());
    const QueryRunResult a = exec.Run(q, *base, &d1);
    const QueryRunResult b = exec.Run(q, *reclustered, &d2);
    EXPECT_EQ(a.rows_output, b.rows_output) << q.id;
    EXPECT_NEAR(a.aggregate, b.aggregate, std::abs(a.aggregate) * 1e-9 + 1e-6)
        << q.id;
  }
}

TEST_F(ExecTest, CorrelatedClusteringRunsFasterThanBase) {
  // The Fig 13 effect, end to end: Q1.2 (yearmonth predicate) on a fact
  // table clustered by orderdate with a CM runs much faster than a full
  // scan of the PK-clustered base.
  Materializer mat(universe_, Disk());
  auto base = mat.Materialize(BaseSpec());
  MvSpec re = BaseSpec();
  re.is_base = false;
  re.name = "re_od";
  re.clustered_key = {"lo_orderdate"};
  CmSpec cm;
  cm.key_columns = {"d_yearmonthnum"};
  auto reclustered = mat.Materialize(re, {cm});
  QueryExecutor exec(registry_, model_);
  const Query& q12 = workload_->queries[1];
  DiskModel d1(Disk()), d2(Disk());
  const double base_s = exec.Run(q12, *base, &d1).seconds;
  const double re_s = exec.Run(q12, *reclustered, &d2).seconds;
  EXPECT_LT(re_s * 3, base_s);
}

// ---------- Determinism across thread counts and batch sizes ----------

// The batched executor's contract (docs/EXECUTION.md): for a fixed
// partition_rows, every thread count and every batch size yields
// bit-identical aggregates, I/O counters, and row counts — partials are
// computed per fixed partition and merged in partition order.
TEST_F(ExecTest, DeterministicAcrossThreadsAndBatchSizes) {
  Materializer mat(universe_, Disk());
  auto base = mat.Materialize(BaseSpec());
  MvSpec re = BaseSpec();
  re.is_base = false;
  re.name = "re_od";
  re.clustered_key = {"lo_orderdate"};
  CmSpec cm;
  cm.key_columns = {"d_yearmonthnum"};
  auto reclustered = mat.Materialize(re, {cm}, {"lo_discount"});
  const std::vector<const MaterializedObject*> objects = {base.get(),
                                                          reclustered.get()};

  // Baseline: 1 thread, default batch, small fixed partitions so the base
  // table spans many partitions (the parallel path is actually exercised).
  constexpr size_t kPartitionRows = 1024;
  std::vector<QueryRunResult> baseline;
  {
    ThreadPool pool(1);
    ExecOptions eo;
    eo.partition_rows = kPartitionRows;
    eo.pool = &pool;
    QueryExecutor exec(registry_, model_, eo);
    for (const auto* obj : objects) {
      for (const auto& q : workload_->queries) {
        DiskModel disk(Disk());
        baseline.push_back(exec.Run(q, *obj, &disk));
      }
    }
  }

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (size_t batch : {1u, 64u, 4096u}) {
      ExecOptions eo;
      eo.batch_rows = batch;
      eo.partition_rows = kPartitionRows;
      eo.pool = &pool;
      QueryExecutor exec(registry_, model_, eo);
      size_t i = 0;
      for (const auto* obj : objects) {
        for (const auto& q : workload_->queries) {
          DiskModel disk(Disk());
          const QueryRunResult run = exec.Run(q, *obj, &disk);
          const QueryRunResult& want = baseline[i++];
          // Bit-identical: EXPECT_EQ on the doubles, not EXPECT_NEAR.
          EXPECT_EQ(run.aggregate, want.aggregate)
              << q.id << " threads=" << threads << " batch=" << batch;
          EXPECT_EQ(run.seconds, want.seconds) << q.id;
          EXPECT_EQ(run.pages_read, want.pages_read) << q.id;
          EXPECT_EQ(run.seeks, want.seeks) << q.id;
          EXPECT_EQ(run.fragments, want.fragments) << q.id;
          EXPECT_EQ(run.rows_output, want.rows_output) << q.id;
          EXPECT_EQ(run.path, want.path) << q.id;
        }
      }
    }
  }
}

// The shared-pool default configuration must agree with an explicit
// 1-thread pool (the serial fallback and the pooled path share partition
// discipline).
TEST_F(ExecTest, SharedPoolMatchesExplicitSingleThread) {
  Materializer mat(universe_, Disk());
  auto base = mat.Materialize(BaseSpec());
  ThreadPool one(1);
  ExecOptions serial;
  serial.pool = &one;
  QueryExecutor exec_shared(registry_, model_);  // defaults: shared pool
  QueryExecutor exec_serial(registry_, model_, serial);
  for (const auto& q : workload_->queries) {
    DiskModel d1(Disk()), d2(Disk());
    const QueryRunResult a = exec_shared.Run(q, *base, &d1);
    const QueryRunResult b = exec_serial.Run(q, *base, &d2);
    EXPECT_EQ(a.aggregate, b.aggregate) << q.id;
    EXPECT_EQ(a.rows_output, b.rows_output) << q.id;
    EXPECT_EQ(a.pages_read, b.pages_read) << q.id;
    EXPECT_EQ(a.seeks, b.seeks) << q.id;
  }
}

// ---------- Maintenance (Fig 14 property) ----------

TEST(MaintenanceTest, CostGrowsWithAdditionalObjects) {
  MaintenanceOptions options;
  options.num_inserts = 20000;
  options.buffer_pool_pages = 2000;
  const MaintainedObject base{1000, 200, true};
  double prev = -1.0;
  for (uint64_t mv_pages : {0ull, 1000ull, 4000ull, 16000ull}) {
    std::vector<MaintainedObject> objects = {base};
    if (mv_pages > 0) objects.push_back({mv_pages, mv_pages / 10, false});
    const MaintenanceResult r = SimulateInsertions(objects, options);
    if (prev >= 0.0) {
      EXPECT_GE(r.seconds, prev);
    }
    prev = r.seconds;
  }
}

TEST(MaintenanceTest, OverflowIsSuperlinear) {
  // Paper: 3 GB of MVs is 67x slower than 1 GB. Check the blow-up shape:
  // objects far beyond pool capacity cost disproportionally more.
  MaintenanceOptions options;
  options.num_inserts = 20000;
  options.buffer_pool_pages = 3000;
  const MaintainedObject base{1000, 100, true};
  const MaintenanceResult small = SimulateInsertions(
      {base, MaintainedObject{1500, 100, false}}, options);
  const MaintenanceResult big = SimulateInsertions(
      {base, MaintainedObject{30000, 3000, false}}, options);
  EXPECT_GT(big.seconds, small.seconds * 5);
  EXPECT_GT(big.dirty_evictions, small.dirty_evictions * 5);
}

TEST(MaintenanceTest, AppendOnlyBaseIsCheapWithinPool) {
  MaintenanceOptions options;
  options.num_inserts = 10000;
  options.buffer_pool_pages = 2000;
  const MaintenanceResult r =
      SimulateInsertions({MaintainedObject{1000, 0, true}}, options);
  // Appends hit the same tail page: almost everything is a pool hit.
  EXPECT_LT(r.pool_misses, 10u);
}

}  // namespace
}  // namespace coradd
